// Command bwnode runs one node of a live bandwidth-centric scheduling
// overlay as an OS process — the deployable form of the paper's
// future-work prototype.
//
// Start a root that will dispatch 1000 synthetic tasks of 64 KiB each and
// print per-node statistics when done:
//
//	bwnode -name root -listen 127.0.0.1:7000 -tasks 1000 -size 65536
//
// Join workers to it (from any machine that can reach the root):
//
//	bwnode -name w1 -parent 127.0.0.1:7000 -compute-ms 5
//	bwnode -name w2 -parent 127.0.0.1:7000 -listen 127.0.0.1:7001 -compute-ms 2
//	bwnode -name w3 -parent 127.0.0.1:7001 -compute-ms 2     # deeper in the tree
//
// Workers may join while the application runs; the protocol folds them in
// with no coordination beyond their own requests. Links are supervised by
// heartbeats, a worker that loses its parent re-dials with capped
// exponential backoff, and a parent requeues a dead subtree's tasks for
// re-execution — so killing a worker mid-run costs throughput, not the
// run. The synthetic "compute" hashes the payload repeatedly for the
// configured duration, standing in for a real independent-task
// application.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"bwcs/live"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bwnode:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bwnode", flag.ContinueOnError)
	var (
		name      = fs.String("name", "", "node name (required)")
		listen    = fs.String("listen", "", "address to accept children on (empty = leaf)")
		parent    = fs.String("parent", "", "parent address (empty = root)")
		buffers   = fs.Int("buffers", 3, "task buffers per node (the paper's FB)")
		nonIC     = fs.Bool("non-interruptible", false, "disable send preemption (non-IC variant)")
		chunk     = fs.Int("chunk", 4096, "bytes per transfer chunk")
		codec     = fs.String("codec", "auto", "wire codec pin: auto (negotiate), binary, or gob")
		computeMS = fs.Int("compute-ms", 10, "synthetic compute time per task, milliseconds")
		tasks     = fs.Int("tasks", 0, "root only: number of tasks to dispatch")
		size      = fs.Int("size", 4096, "root only: task payload bytes")
		timeout   = fs.Duration("timeout", 10*time.Minute, "root only: run deadline")
		status    = fs.String("status", "", "serve /status (JSON), /metrics (Prometheus), /debug/events (flight recorder), /timeline (sampled telemetry) and /debug/pprof at this address (e.g. 127.0.0.1:8080)")
		traceOut  = fs.String("trace-out", "", "write the node's flight-recorder dump (JSON) to this file on exit; merge dumps with bwtrace")
		recorder  = fs.Int("recorder", 0, "flight-recorder ring capacity in events (0 = default 8192, negative disables)")
		timeline  = fs.Duration("timeline", 0, "telemetry sampling interval for /timeline (0 = default 1s, negative disables)")

		heartbeat = fs.Duration("heartbeat", time.Second, "per-link heartbeat interval (negative disables supervision)")
		hbMisses  = fs.Int("heartbeat-misses", 3, "consecutive silent intervals before a link is severed")
		reBase    = fs.Duration("reconnect-base", 100*time.Millisecond, "first reconnect backoff delay")
		reCap     = fs.Duration("reconnect-cap", 2*time.Second, "reconnect backoff ceiling")
		reTries   = fs.Int("reconnect-attempts", 5, "parent re-dials before giving up (negative disables reconnection)")
		grace     = fs.Duration("grace", 5*time.Second, "how long a dead child stays revivable before its tasks requeue")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("-name is required")
	}
	if *parent == "" && *tasks <= 0 {
		return fmt.Errorf("a root needs -tasks")
	}

	opts := []live.Option{
		live.WithListen(*listen),
		live.WithParent(*parent),
		live.WithBuffers(*buffers),
		live.WithChunkSize(*chunk),
		live.WithCompute(hashCompute(time.Duration(*computeMS) * time.Millisecond)),
		live.WithHeartbeat(*heartbeat, *hbMisses),
		live.WithReconnect(*reBase, *reCap, *reTries),
		live.WithReconnectGrace(*grace),
	}
	if *nonIC {
		opts = append(opts, live.NonInterruptible())
	}
	switch *codec {
	case "auto":
	case "binary":
		opts = append(opts, live.WithWireCodecs(live.CodecBinary))
	case "gob":
		opts = append(opts, live.WithWireCodecs(live.CodecGob))
	default:
		return fmt.Errorf("-codec must be auto, binary, or gob (got %q)", *codec)
	}
	if *recorder != 0 {
		opts = append(opts, live.WithRecorderCapacity(*recorder))
	}
	if *timeline != 0 {
		opts = append(opts, live.WithTimelineInterval(*timeline))
	}
	node, err := live.Start(*name, opts...)
	if err != nil {
		return err
	}
	defer node.Close()
	if *traceOut != "" {
		// The dump is written after Close so it holds the complete run,
		// shutdown frames included.
		defer func() {
			_ = node.Close()
			if werr := writeTraceDump(node, *traceOut); werr != nil {
				fmt.Fprintln(os.Stderr, "bwnode:", werr)
			}
		}()
	}
	if *listen != "" {
		fmt.Printf("%s listening on %s\n", *name, node.Addr())
	}
	if *status != "" {
		addr, err := node.ServeStatus(*status)
		if err != nil {
			return err
		}
		fmt.Printf("%s status at http://%s/status, metrics at http://%s/metrics, pprof at http://%s/debug/pprof/\n",
			*name, addr, addr, addr)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	if *parent != "" {
		// Worker: serve until interrupted, the parent winds us down, or
		// the node fails for good (reconnect attempts exhausted).
		fmt.Printf("%s joined parent %s; serving (ctrl-c to leave)\n", *name, *parent)
		var fatal error
		select {
		case <-ctx.Done():
		case <-node.Done():
		case <-node.Failed():
			fatal = node.Err()
		}
		s := node.Stats()
		fmt.Printf("%s leaving: computed %d, forwarded %d, requests %d\n", *name, s.Computed, s.Forwarded, s.Requests)
		printRecovery(*name, s)
		return fatal
	}

	// Root: build the workload, run it, report. Ctrl-c cancels the run;
	// -timeout is the context deadline.
	work := make([]live.Task, *tasks)
	for i := range work {
		payload := make([]byte, *size)
		for j := range payload {
			payload[j] = byte(i * j)
		}
		work[i] = live.Task{ID: uint64(i + 1), Payload: payload}
	}
	runCtx, cancelRun := context.WithTimeout(ctx, *timeout)
	defer cancelRun()
	start := time.Now()
	results, err := node.Run(runCtx, work)
	if err != nil {
		var te *live.TimeoutError
		if errors.As(err, &te) {
			fmt.Printf("timed out with %d of %d results\n", te.Received, te.Expected)
		}
		return err
	}
	elapsed := time.Since(start)
	byOrigin := map[string]int{}
	for _, r := range results {
		byOrigin[r.Origin]++
	}
	fmt.Printf("completed %d tasks in %v (%.1f tasks/s)\n", len(results), elapsed.Round(time.Millisecond),
		float64(len(results))/elapsed.Seconds())
	for origin, count := range byOrigin {
		fmt.Printf("  %-12s %6d tasks\n", origin, count)
	}
	s := node.Stats()
	fmt.Printf("root: computed %d, forwarded %d, interrupts %d\n", s.Computed, s.Forwarded, s.Interrupts)
	printRecovery("root", s)
	return nil
}

// writeTraceDump serializes the node's flight recorder for bwtrace.
func writeTraceDump(node *live.Node, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(node.TraceDump()); err != nil {
		f.Close()
		return fmt.Errorf("trace-out: %w", err)
	}
	return f.Close()
}

// printRecovery reports the fault-tolerance counters when anything
// actually went wrong (and recovered); a clean run prints nothing.
func printRecovery(name string, s live.Stats) {
	if s.Reconnects+s.Requeued+s.Resumed+s.HeartbeatMisses+s.ResultsReplayed+s.ResultsDeduped == 0 {
		return
	}
	fmt.Printf("%s recovery: reconnects %d, requeued %d (%d on revive), resumed %d, heartbeat misses %d, results replayed %d, deduped %d\n",
		name, s.Reconnects, s.Requeued, s.RequeuedOnRevive, s.Resumed, s.HeartbeatMisses, s.ResultsReplayed, s.ResultsDeduped)
}

// hashCompute burns roughly d of CPU per task by re-hashing the payload,
// returning the final digest — a deterministic stand-in for real work.
func hashCompute(d time.Duration) live.ComputeFunc {
	return func(t live.Task) ([]byte, error) {
		sum := sha256.Sum256(t.Payload)
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
			sum = sha256.Sum256(sum[:])
		}
		return sum[:], nil
	}
}
