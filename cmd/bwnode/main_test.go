package main

import (
	"testing"
	"time"

	"bwcs/live"
)

func TestFlagValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatalf("nameless node accepted")
	}
	if err := run([]string{"-name", "root"}); err == nil {
		t.Fatalf("root without -tasks accepted")
	}
}

func TestRootRunsAloneAndWithWorker(t *testing.T) {
	// Drive the root through run() while a library worker joins it, so
	// the CLI path and the wire protocol are both exercised.
	done := make(chan error, 1)
	addrCh := make(chan string, 1)
	go func() {
		addrCh <- "127.0.0.1:39907"
		done <- run([]string{
			"-name", "root", "-listen", "127.0.0.1:39907",
			"-tasks", "40", "-size", "512", "-compute-ms", "25",
			"-timeout", "60s",
		})
	}()
	addr := <-addrCh
	// Join a worker while the root grinds through its tasks. If the root
	// happens to finish first (slow CI machine ordering), the CLI path is
	// still exercised; only skip the worker assertions then.
	var worker *live.Node
	for i := 0; i < 100; i++ {
		w, err := live.StartConfig(live.Config{
			Name: "w", Parent: addr, Buffers: 2,
			Compute: func(t live.Task) ([]byte, error) { return nil, nil },
		})
		if err == nil {
			worker = w
			break
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("root run: %v", err)
			}
			t.Log("root finished before the worker connected; CLI path still verified")
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
	if worker == nil {
		t.Fatalf("worker never connected")
	}
	defer worker.Close()
	if err := <-done; err != nil {
		t.Fatalf("root run: %v", err)
	}
	if got := worker.Stats().Computed; got == 0 {
		t.Fatalf("connected worker computed nothing over a 1s run")
	}
}

func TestHashComputeBurnsAndReturnsDigest(t *testing.T) {
	fn := hashCompute(time.Millisecond)
	out, err := fn(live.Task{ID: 1, Payload: []byte("data")})
	if err != nil {
		t.Fatalf("hashCompute: %v", err)
	}
	if len(out) != 32 {
		t.Fatalf("digest length %d", len(out))
	}
	// Deterministic? No — it hashes until a deadline, so the number of
	// rounds varies. Only shape is asserted.
}
