// Command bwtree generates and inspects platform trees.
//
// Generate a random platform in the paper's distribution and save it:
//
//	bwtree -gen -seed 7 -index 3 -out platform.tree
//
// Inspect a platform: structure, optimal steady-state rate, and the
// bandwidth-centric theorem's per-node allocation:
//
//	bwtree -in platform.tree -optimal
//	bwtree -example -optimal          # the paper's Figure 1 platform
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bwcs"

	"bwcs/internal/dot"
	"bwcs/internal/optimal"
	"bwcs/internal/randtree"
	"bwcs/internal/tree"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bwtree:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bwtree", flag.ContinueOnError)
	var (
		gen     = fs.Bool("gen", false, "generate a random platform")
		example = fs.Bool("example", false, "use the paper's Figure 1 platform")
		in      = fs.String("in", "", "read a platform from this file")
		outFile = fs.String("out", "", "write the platform to this file (default stdout when generating)")
		seed    = fs.Uint64("seed", 1, "generator seed")
		index   = fs.Int("index", 0, "tree index within the seed's stream")
		m       = fs.Int("m", 10, "minimum nodes")
		n       = fs.Int("n", 500, "maximum nodes")
		b       = fs.Int64("b", 1, "minimum link time")
		d       = fs.Int64("d", 100, "maximum link time")
		x       = fs.Int64("x", 10000, "computation parameter (times in [x/100, x])")
		opt     = fs.Bool("optimal", false, "print the optimal steady-state rate and allocation")
		dotOut  = fs.String("dot", "", "write a Graphviz DOT rendering (with allocation coloring) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var t *tree.Tree
	switch {
	case *gen:
		p := randtree.Params{MinNodes: *m, MaxNodes: *n, MinComm: *b, MaxComm: *d, Comp: *x}
		if err := p.Validate(); err != nil {
			return err
		}
		t = randtree.TreeAt(p, *seed, *index)
	case *example:
		t = bwcs.ExampleTree()
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		t, err = tree.Decode(f)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -gen, -example or -in is required")
	}

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		if err := t.Encode(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d-node platform to %s\n", t.Len(), *outFile)
	} else if *gen && !*opt {
		if err := t.Encode(out); err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "platform: %d nodes, depth %d\n", t.Len(), t.MaxDepth())
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			return err
		}
		if err := dot.Write(f, t, dot.Options{Allocation: optimal.Compute(t)}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote DOT rendering to %s\n", *dotOut)
	}
	if !*opt {
		return nil
	}
	a := optimal.Compute(t)
	fmt.Fprintf(out, "optimal steady-state rate: %s tasks/timestep (%.6f); weight wtree = %s\n",
		a.Rate, a.Rate.Float64(), a.TreeWeight)
	fmt.Fprintf(out, "\n%-6s %-6s %6s %6s %-10s %14s %14s\n", "node", "parent", "w", "c", "class", "compute rate", "inflow rate")
	t.Walk(func(id tree.NodeID) bool {
		parent := "-"
		c := "-"
		if id != t.Root() {
			parent = fmt.Sprintf("%d", t.Parent(id))
			c = fmt.Sprintf("%d", t.C(id))
		}
		fmt.Fprintf(out, "%-6d %-6s %6d %6s %-10s %14.6f %14.6f\n",
			id, parent, t.W(id), c, a.Class(t, id), a.NodeRate[id].Float64(), a.InflowRate[id].Float64())
		return true
	})
	used := 0
	for id := tree.NodeID(0); int(id) < t.Len(); id++ {
		if a.Used(id) {
			used++
		}
	}
	fmt.Fprintf(out, "\n%d of %d nodes are used in the optimal schedule\n", used, t.Len())
	return nil
}
