package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestExampleOptimal(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-example", "-optimal"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{"8 nodes", "13/15", "saturated", "starved", "4 of 8 nodes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestGenerateWriteReadBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.tree")
	var b strings.Builder
	if err := run([]string{"-gen", "-seed", "5", "-index", "2", "-m", "10", "-n", "30", "-out", path}, &b); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if !strings.Contains(b.String(), "wrote") {
		t.Fatalf("no write confirmation: %s", b.String())
	}
	b.Reset()
	if err := run([]string{"-in", path, "-optimal"}, &b); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !strings.Contains(b.String(), "optimal steady-state rate") {
		t.Fatalf("no optimal output:\n%s", b.String())
	}
}

func TestGenerateToStdout(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-gen", "-seed", "1", "-m", "5", "-n", "5"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(b.String(), "bwcs-tree v1") {
		t.Fatalf("no tree on stdout:\n%s", b.String())
	}
}

func TestErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{}, &b); err == nil {
		t.Fatalf("no source accepted")
	}
	if err := run([]string{"-gen", "-m", "0"}, &b); err == nil {
		t.Fatalf("bad params accepted")
	}
	if err := run([]string{"-in", "/does/not/exist"}, &b); err == nil {
		t.Fatalf("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.tree")
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", bad}, &b); err == nil {
		t.Fatalf("garbage file accepted")
	}
}

func TestDOTExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.dot")
	var b strings.Builder
	if err := run([]string{"-example", "-dot", path}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read dot: %v", err)
	}
	if !strings.Contains(string(data), "digraph") || !strings.Contains(string(data), "palegreen") {
		t.Fatalf("dot output wrong:\n%s", data)
	}
}
