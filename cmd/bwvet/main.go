// Command bwvet runs the repo-invariant analyzer suite (internal/lint)
// over this module: simulation determinism, wire-protocol exhaustiveness,
// lock discipline, atomic/plain access mixing, context plumbing, hot-path
// allocation discipline, goroutine lifecycle, and error discipline.
//
// Usage:
//
//	go run ./cmd/bwvet ./...
//	go run ./cmd/bwvet -list
//	go run ./cmd/bwvet -fix ./...          apply suggested fixes in place
//	go run ./cmd/bwvet -fix -diff ./...    print fixes as a diff, don't write
//	go run ./cmd/bwvet -sarif out.sarif ./...
//	go run ./cmd/bwvet -ignores ./...      audit every //lint:bwvet-ignore
//
// Exit status is 0 when the tree is clean, 1 when any analyzer reports a
// finding (or, under -fix -diff, when fixes would change files), 2 on
// load or type-check failure. Suppress a deliberate violation with a
// reasoned marker on (or directly above) the line:
//
//	//lint:bwvet-ignore <reason>
//
// An ignore that stops suppressing anything becomes a finding itself, so
// suppressions cannot outlive the violation they excused.
package main

import (
	"flag"
	"fmt"
	"os"

	"bwcs/internal/lint"
	"bwcs/internal/lint/analysis"
	"bwcs/internal/lint/loader"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	fix := flag.Bool("fix", false, "apply suggested fixes to the source files")
	diff := flag.Bool("diff", false, "with -fix: print the fixes as a diff instead of writing files (exit 1 if any)")
	sarifOut := flag.String("sarif", "", "write findings as SARIF 2.1.0 to this file")
	ignores := flag.Bool("ignores", false, "list every //lint:bwvet-ignore directive with its audit status and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bwvet [-list] [-fix [-diff]] [-sarif file] [-ignores] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	l, err := loader.New(cwd)
	if err != nil {
		fatal(err)
	}
	paths, err := l.Expand(cwd, patterns)
	if err != nil {
		fatal(err)
	}
	if len(paths) == 0 {
		fatal(fmt.Errorf("no packages match %v", patterns))
	}

	var diags []analysis.Diagnostic
	var directives []*lint.IgnoreDirective
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			fatal(err)
		}
		if *ignores {
			dirs, err := lint.Ignores(pkg, lint.Analyzers)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
			directives = append(directives, dirs...)
			continue
		}
		ds, err := lint.Check(pkg, lint.Analyzers)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		diags = append(diags, ds...)
	}

	if *ignores {
		reportIgnores(l, directives)
		return
	}
	if *sarifOut != "" {
		data, err := lint.SARIF(l.Fset, l.ModuleRoot(), diags)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*sarifOut, data, 0o644); err != nil {
			fatal(err)
		}
	}
	if *fix {
		os.Exit(applyFixes(l, diags, *diff))
	}

	findings := 0
	for _, d := range diags {
		pos := l.Fset.Position(d.Pos)
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
		findings++
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "bwvet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// applyFixes applies (or, with diffOnly, previews) every suggested fix
// and reports the findings that have none. Returns the exit code: under
// diffOnly a non-empty diff is 1 (CI check mode: fixes pending), and
// unfixable findings are 1 either way.
func applyFixes(l *loader.Loader, diags []analysis.Diagnostic, diffOnly bool) int {
	fixed, err := lint.ApplyFixes(l.Fset, diags)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bwvet:", err)
		return 2
	}
	code := 0
	if diffOnly {
		text, err := lint.Diff(fixed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bwvet:", err)
			return 2
		}
		if text != "" {
			fmt.Print(text)
			fmt.Fprintf(os.Stderr, "bwvet: fixes pending in %d file(s); run bwvet -fix\n", len(fixed))
			code = 1
		}
	} else {
		for name, data := range fixed {
			if err := os.WriteFile(name, data, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "bwvet:", err)
				return 2
			}
			fmt.Printf("bwvet: fixed %s\n", name)
		}
	}
	remaining := 0
	for _, d := range diags {
		if len(d.SuggestedFixes) > 0 {
			continue
		}
		pos := l.Fset.Position(d.Pos)
		fmt.Printf("%s: %s: %s (no automatic fix)\n", pos, d.Analyzer, d.Message)
		remaining++
	}
	if remaining > 0 {
		fmt.Fprintf(os.Stderr, "bwvet: %d finding(s) without fixes\n", remaining)
		code = 1
	}
	return code
}

// reportIgnores renders the suppression audit: every directive, its
// reason, and whether it still earns its keep.
func reportIgnores(l *loader.Loader, directives []*lint.IgnoreDirective) {
	stale := 0
	for _, dir := range directives {
		status := "used"
		switch {
		case dir.Reason == "":
			status = "MALFORMED (no reason)"
			stale++
		case !dir.Used:
			status = "STALE (suppresses nothing)"
			stale++
		}
		fmt.Printf("%s:%d: %-28s %s\n", dir.File, dir.Line, status, dir.Reason)
	}
	fmt.Fprintf(os.Stderr, "bwvet: %d ignore directive(s), %d needing attention\n", len(directives), stale)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bwvet:", err)
	os.Exit(2)
}
