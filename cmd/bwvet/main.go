// Command bwvet runs the repo-invariant analyzer suite (internal/lint)
// over this module: simulation determinism, wire-protocol exhaustiveness,
// lock discipline, atomic/plain access mixing, and context plumbing.
//
// Usage:
//
//	go run ./cmd/bwvet ./...
//	go run ./cmd/bwvet -list
//	go run ./cmd/bwvet ./live/... ./internal/...
//
// Exit status is 0 when the tree is clean, 1 when any analyzer reports a
// finding, 2 on load or type-check failure. Suppress a deliberate
// violation with a reasoned marker on (or directly above) the line:
//
//	//lint:bwvet-ignore <reason>
package main

import (
	"flag"
	"fmt"
	"os"

	"bwcs/internal/lint"
	"bwcs/internal/lint/loader"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bwvet [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	l, err := loader.New(cwd)
	if err != nil {
		fatal(err)
	}
	paths, err := l.Expand(cwd, patterns)
	if err != nil {
		fatal(err)
	}
	if len(paths) == 0 {
		fatal(fmt.Errorf("no packages match %v", patterns))
	}

	findings := 0
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			fatal(err)
		}
		diags, err := lint.Check(pkg, lint.Analyzers)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "bwvet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bwvet:", err)
	os.Exit(2)
}
