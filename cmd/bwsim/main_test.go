package main

import (
	"strings"
	"testing"
)

func TestExampleRun(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-example", "-tasks", "800", "-threshold", "100", "-chart", "-top", "3"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"8 nodes", "IC FB=3", "optimal steady-state rate",
		"periodicity", "used nodes", "normalized windowed throughput",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestProtocolVariants(t *testing.T) {
	for _, args := range [][]string{
		{"-example", "-protocol", "nonic", "-buffers", "1", "-tasks", "500", "-threshold", "50"},
		{"-example", "-protocol", "nonic-fixed", "-buffers", "2", "-tasks", "500", "-threshold", "50"},
		{"-gen", "-seed", "3", "-index", "1", "-tasks", "500", "-threshold", "50"},
		{"-example", "-order", "compute", "-tasks", "400", "-threshold", "50"},
		{"-example", "-order", "fcfs", "-protocol", "nonic-fixed", "-tasks", "400", "-threshold", "50"},
	} {
		var b strings.Builder
		if err := run(args, &b); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		if !strings.Contains(b.String(), "makespan") {
			t.Fatalf("run(%v) produced no report:\n%s", args, b.String())
		}
	}
}

func TestErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{}, &b); err == nil {
		t.Fatalf("no platform accepted")
	}
	if err := run([]string{"-example", "-protocol", "nope"}, &b); err == nil {
		t.Fatalf("unknown protocol accepted")
	}
	if err := run([]string{"-example", "-order", "nope"}, &b); err == nil {
		t.Fatalf("unknown order accepted")
	}
	if err := run([]string{"-in", "/does/not/exist"}, &b); err == nil {
		t.Fatalf("missing file accepted")
	}
}
