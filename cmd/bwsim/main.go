// Command bwsim runs one simulation of an independent-task application on
// a platform tree under an autonomous scheduling protocol and reports
// throughput, steady-state onset, and buffer usage.
//
// Examples:
//
//	bwsim -example -protocol ic -buffers 3 -tasks 10000
//	bwsim -in platform.tree -protocol nonic -buffers 1 -tasks 4000 -chart
//	bwsim -gen -seed 9 -index 0 -protocol ic -buffers 2 -tasks 2000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bwcs"

	"bwcs/internal/engine"
	"bwcs/internal/optimal"
	"bwcs/internal/protocol"
	"bwcs/internal/randtree"
	"bwcs/internal/sim"
	"bwcs/internal/steady"
	"bwcs/internal/textplot"
	"bwcs/internal/trace"
	"bwcs/internal/tree"
	"bwcs/internal/window"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bwsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bwsim", flag.ContinueOnError)
	var (
		in        = fs.String("in", "", "read the platform from this file")
		example   = fs.Bool("example", false, "use the paper's Figure 1 platform")
		gen       = fs.Bool("gen", false, "generate a random platform (paper defaults)")
		seed      = fs.Uint64("seed", 1, "generator seed for -gen")
		index     = fs.Int("index", 0, "tree index for -gen")
		protoName = fs.String("protocol", "ic", "protocol: ic, nonic (growth), nonic-fixed")
		buffers   = fs.Int("buffers", 3, "buffers per node (IB for nonic, FB otherwise)")
		order     = fs.String("order", "bandwidth", "child order: bandwidth, compute, fcfs, roundrobin, random")
		tasks     = fs.Int64("tasks", 10000, "application size")
		threshold = fs.Int("threshold", window.DefaultThreshold, "onset window threshold")
		chart     = fs.Bool("chart", false, "plot the normalized windowed rate")
		top       = fs.Int("top", 10, "show the busiest N nodes")
		showTrace = fs.Int64("trace", 0, "render a per-node activity timeline for the first N timesteps")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var t *tree.Tree
	var err error
	switch {
	case *example:
		t = bwcs.ExampleTree()
	case *gen:
		t = randtree.TreeAt(randtree.Defaults(), *seed, *index)
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		if t, err = tree.Decode(f); err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -in, -example or -gen is required")
	}

	var p protocol.Protocol
	switch *protoName {
	case "ic":
		p = protocol.Interruptible(*buffers)
	case "nonic":
		p = protocol.NonInterruptible(*buffers)
	case "nonic-fixed":
		p = protocol.NonInterruptibleFixed(*buffers)
	default:
		return fmt.Errorf("unknown protocol %q", *protoName)
	}
	switch *order {
	case "bandwidth":
	case "compute":
		p = p.WithOrder(protocol.ComputeCentric)
	case "fcfs":
		p = p.WithOrder(protocol.FCFS)
	case "roundrobin":
		p = p.WithOrder(protocol.RoundRobin)
	case "random":
		p = p.WithOrder(protocol.Random)
	default:
		return fmt.Errorf("unknown order %q", *order)
	}

	var rec *trace.Recorder
	cfg := engine.Config{Tree: t, Protocol: p, Tasks: *tasks, Seed: *seed}
	if *showTrace > 0 {
		rec = &trace.Recorder{}
		cfg.Tracer = rec
	}
	res, err := engine.Run(cfg)
	if err != nil {
		return err
	}
	opt := optimal.Compute(t)
	series, err := window.New(res.Completions, opt.TreeWeight)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "platform: %d nodes, depth %d; protocol: %s; tasks: %d\n", t.Len(), t.MaxDepth(), p, *tasks)
	fmt.Fprintf(out, "optimal steady-state rate: %.6f tasks/timestep (exact %s)\n", opt.Rate.Float64(), opt.Rate)
	fmt.Fprintf(out, "makespan: %d timesteps; whole-run rate: %.6f (%.2f%% of optimal)\n",
		res.Makespan, float64(*tasks)/float64(res.Makespan),
		100*float64(*tasks)/float64(res.Makespan)/opt.Rate.Float64())
	if onset, ok := series.Onset(*threshold); ok {
		fmt.Fprintf(out, "reached optimal steady state at window %d (paper criterion, threshold %d)\n", onset, *threshold)
	} else if onset, ok := series.OnsetInclusive(*threshold); ok {
		fmt.Fprintf(out, "reached optimal steady state at window %d (inclusive criterion)\n", onset)
	} else {
		fmt.Fprintf(out, "did not reach the optimal steady-state rate within %d tasks\n", *tasks)
	}
	det := steady.Detect(res.Completions, steady.Options{})
	if det.Found {
		fmt.Fprintf(out, "periodicity: %s — %s vs the optimal rate\n", det, det.Classify(opt.TreeWeight))
	} else {
		fmt.Fprintf(out, "periodicity: none detected within the horizon\n")
	}
	fmt.Fprintf(out, "used nodes: %d/%d (max depth %d); buffers: max/node %d (peak queued %d), total %d; events: %d\n",
		res.UsedCount(), t.Len(), res.UsedMaxDepth(), res.MaxNodeBuffers(), res.MaxNodeUsed(), res.TotalBuffers(), res.Steps)

	var interrupts int64
	for i := range res.Nodes {
		interrupts += res.Nodes[i].Interrupted
	}
	if p.Interruptible {
		fmt.Fprintf(out, "interrupted sends: %d\n", interrupts)
	}

	if *chart {
		norm := series.NormalizedSeries()
		xs := make([]float64, len(norm))
		for i := range xs {
			xs[i] = float64(i + 1)
		}
		fmt.Fprintln(out)
		c := textplot.NewChart("normalized windowed throughput", 72, 16).
			Labels("window start (tasks completed)", "rate / optimal").
			Line(p.Label, xs, norm)
		if err := c.Render(out); err != nil {
			return err
		}
	}

	if rec != nil {
		until := sim.Time(*showTrace)
		if until > res.Makespan {
			until = res.Makespan
		}
		bucket := until / 72
		if bucket < 1 {
			bucket = 1
		}
		fmt.Fprintln(out)
		if err := rec.Timeline(out, 0, until, bucket, 24); err != nil {
			return err
		}
	}

	if *top > 0 {
		fmt.Fprintf(out, "\n%-6s %8s %10s %10s %10s %8s\n", "node", "computed", "received", "forwarded", "requests", "buffers")
		shown := 0
		// Show nodes in descending computed order, simple selection.
		used := make([]int, 0, len(res.Nodes))
		for i := range res.Nodes {
			used = append(used, i)
		}
		for a := 0; a < len(used) && shown < *top; a++ {
			best := a
			for b := a + 1; b < len(used); b++ {
				if res.Nodes[used[b]].Computed > res.Nodes[used[best]].Computed {
					best = b
				}
			}
			used[a], used[best] = used[best], used[a]
			ns := res.Nodes[used[a]]
			if ns.Computed == 0 {
				break
			}
			fmt.Fprintf(out, "%-6d %8d %10d %10d %10d %8d\n", used[a], ns.Computed, ns.Received, ns.Forwarded, ns.Requests, ns.Buffers)
			shown++
		}
	}
	return nil
}
