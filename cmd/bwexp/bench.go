package main

// The -bench-json mode: run the scaled-down figure benchmarks through
// testing.Benchmark and persist a machine-readable baseline. The output
// file, BENCH_<date>.json, is the repo's performance trajectory — every
// perf PR reruns this mode and commits the new baseline next to the old
// ones, so regressions in ns/op, allocs/op or trees/sec are visible in
// the diff (the schema is documented in README.md).

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"bwcs/internal/engine"
	"bwcs/internal/experiments"
	"bwcs/internal/protocol"
	"bwcs/internal/randtree"
)

// benchSchema versions the baseline document format.
const benchSchema = "bwcs-bench/v1"

// benchEntry is one benchmark's measurement.
type benchEntry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	TreesPerSec float64 `json:"trees_per_sec,omitempty"`
}

// benchReport is the persisted baseline document.
type benchReport struct {
	Schema     string       `json:"schema"`
	Date       string       `json:"date"`
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	NumCPU     int          `json:"num_cpu"`
	Trees      int          `json:"trees"`
	Tasks      int64        `json:"tasks"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

// benchScale mirrors the bench_test.go configuration: small enough to
// run in milliseconds per iteration, structured like the real sweeps.
func benchScale(trees int, tasks int64) experiments.Options {
	o := experiments.Options{
		Trees:     16,
		Tasks:     900,
		Threshold: 100,
		Seed:      2003,
		Params:    randtree.Params{MinNodes: 10, MaxNodes: 200, MinComm: 1, MaxComm: 100, Comp: 4000},
	}
	if trees > 0 {
		o.Trees = trees
	}
	if tasks > 0 {
		o.Tasks = tasks
	}
	return o
}

// runBenchJSON measures the benchmark suite and writes BENCH_<date>.json
// into dir, returning the file path.
func runBenchJSON(out io.Writer, dir string, trees int, tasks int64) (string, error) {
	o := benchScale(trees, tasks)
	small := o
	small.Trees = max(2, o.Trees/3)

	popBench := func(fn func(experiments.Options) error, opts experiments.Options, treesPerOp int) (func(*testing.B), int) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := fn(opts); err != nil {
					b.Fatal(err)
				}
			}
		}, treesPerOp
	}

	type namedBench struct {
		name       string
		treesPerOp int
		fn         func(*testing.B)
	}
	var benches []namedBench
	add := func(name string, fn func(*testing.B), treesPerOp int) {
		benches = append(benches, namedBench{name: name, treesPerOp: treesPerOp, fn: fn})
	}

	fn, n := popBench(func(o experiments.Options) error { _, err := experiments.Fig3(o); return err }, o, o.Trees)
	add("Fig3", fn, n)
	fn, n = popBench(func(o experiments.Options) error { _, err := experiments.Fig4(o); return err }, o, 4*o.Trees)
	add("Fig4", fn, n)
	fn, n = popBench(func(o experiments.Options) error { _, err := experiments.Fig5(o); return err }, small, 8*small.Trees)
	add("Fig5", fn, n)
	fn, n = popBench(func(o experiments.Options) error { _, err := experiments.Table2(o); return err }, small, small.Trees)
	add("Table2", fn, n)

	tr := randtree.TreeAt(randtree.Defaults(), 1, 0)
	add("SimulateIC3", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Run(engine.Config{Tree: tr, Protocol: protocol.Interruptible(3), Tasks: o.Tasks}); err != nil {
				b.Fatal(err)
			}
		}
	}, 1)
	add("SimulateNonIC", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Run(engine.Config{Tree: tr, Protocol: protocol.NonInterruptible(1), Tasks: o.Tasks}); err != nil {
				b.Fatal(err)
			}
		}
	}, 1)

	report := benchReport{
		Schema:    benchSchema,
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Trees:     o.Trees,
		Tasks:     o.Tasks,
	}
	for _, nb := range benches {
		start := time.Now()
		r := testing.Benchmark(nb.fn)
		entry := benchEntry{
			Name:        nb.name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if nb.treesPerOp > 0 && r.NsPerOp() > 0 {
			entry.TreesPerSec = float64(nb.treesPerOp) * 1e9 / float64(r.NsPerOp())
		}
		report.Benchmarks = append(report.Benchmarks, entry)
		fmt.Fprintf(out, "%-14s %10d ns/op %8d allocs/op %12.0f trees/sec   [%d iters, %v]\n",
			nb.name, entry.NsPerOp, entry.AllocsPerOp, entry.TreesPerSec, r.N, time.Since(start).Round(time.Millisecond))
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	// Several baselines can land on one day (a perf PR next to an
	// unrelated one); never clobber an existing file — suffix instead.
	base := "BENCH_" + time.Now().UTC().Format("2006-01-02")
	path := filepath.Join(dir, base+".json")
	for n := 2; ; n++ {
		if _, err := os.Stat(path); os.IsNotExist(err) {
			break
		}
		path = filepath.Join(dir, fmt.Sprintf("%s.%d.json", base, n))
	}
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	fmt.Fprintf(out, "baseline written to %s\n", path)
	return path, nil
}
