package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tiny returns flags that keep an experiment under a second.
func tiny(exp string, extra ...string) []string {
	args := []string{"-exp", exp, "-trees", "6", "-tasks", "400", "-threshold", "50", "-q"}
	return append(args, extra...)
}

func TestEachExperimentRenders(t *testing.T) {
	cases := map[string][]string{
		"fig3":               tiny("fig3"),
		"fig4":               tiny("fig4"),
		"table1":             tiny("table1"),
		"fig6":               tiny("fig6"),
		"fig5":               tiny("fig5", "-trees", "3"),
		"table2":             tiny("table2", "-trees", "3", "-tasks", "400"),
		"fig7":               tiny("fig7"),
		"ablation-policy":    tiny("ablation-policy", "-trees", "3"),
		"ablation-interrupt": tiny("ablation-interrupt", "-trees", "3"),
		"ablation-decay":     tiny("ablation-decay", "-trees", "3"),
		"churn":              tiny("churn", "-trees", "3", "-churn", "2"),
		"overlay":            tiny("overlay", "-graphs", "4"),
	}
	markers := map[string]string{
		"fig3": "Figure 3(a)", "fig4": "Figure 4", "table1": "Table 1",
		"fig6": "Figure 6(a)", "fig5": "Figure 5", "table2": "Table 2",
		"fig7": "Figure 7", "ablation-policy": "Ablation",
		"ablation-interrupt": "Ablation", "ablation-decay": "decay",
		"churn": "Churn study", "overlay": "Overlay construction",
	}
	for exp, args := range cases {
		t.Run(exp, func(t *testing.T) {
			var b strings.Builder
			if err := run(args, &b); err != nil {
				t.Fatalf("run: %v", err)
			}
			if !strings.Contains(b.String(), markers[exp]) {
				t.Fatalf("output missing %q:\n%s", markers[exp], b.String())
			}
		})
	}
}

func TestMultipleExperimentsShareFig4Runs(t *testing.T) {
	var b strings.Builder
	if err := run(tiny("fig4,table1,fig6"), &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{"Figure 4", "Table 1", "Figure 6(a)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestCSVExport(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	var b strings.Builder
	if err := run(tiny("fig4", "-csv", dir), &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read dir: %v", err)
	}
	var csvs, jsons int
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".csv"):
			csvs++
		case strings.HasSuffix(e.Name(), ".json"):
			jsons++
		}
	}
	if csvs != 4 || jsons != 1 {
		t.Fatalf("exports: %d csv, %d json", csvs, jsons)
	}
}

func TestUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-exp", "fig99"}, &b); err == nil {
		t.Fatalf("unknown experiment accepted")
	}
}

func TestBenchJSONWritesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("bench mode runs ~1s per benchmark")
	}
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-bench-json", "-bench-out", dir, "-trees", "2", "-tasks", "300"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("baseline files = %v (err %v), want exactly one", matches, err)
	}
	raw, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var report benchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("baseline is not valid JSON: %v\n%s", err, raw)
	}
	if report.Schema != benchSchema {
		t.Fatalf("schema = %q, want %q", report.Schema, benchSchema)
	}
	if report.GoVersion == "" || report.Date == "" || report.Trees != 2 || report.Tasks != 300 {
		t.Fatalf("metadata incomplete: %+v", report)
	}
	if len(report.Benchmarks) < 6 {
		t.Fatalf("only %d benchmarks measured", len(report.Benchmarks))
	}
	for _, e := range report.Benchmarks {
		if e.NsPerOp <= 0 || e.Iterations <= 0 {
			t.Fatalf("benchmark %s has empty measurements: %+v", e.Name, e)
		}
		if e.TreesPerSec <= 0 {
			t.Fatalf("benchmark %s reports no throughput: %+v", e.Name, e)
		}
	}
	if !strings.Contains(b.String(), "baseline written to") {
		t.Fatalf("no confirmation printed:\n%s", b.String())
	}
}

func TestProfilingFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	trc := filepath.Join(dir, "trace.out")
	var b strings.Builder
	if err := run(tiny("fig3", "-cpuprofile", cpu, "-memprofile", mem, "-trace", trc), &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, p := range []string{cpu, mem, trc} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
