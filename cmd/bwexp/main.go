// Command bwexp reproduces the paper's evaluation: every figure and table
// of Section 4, plus the ablation and overlay studies described in
// DESIGN.md.
//
// Usage:
//
//	bwexp -exp fig4                 # one experiment at default scale
//	bwexp -exp all -trees 2000      # the whole evaluation, larger population
//	bwexp -exp fig4 -paper          # the paper's full 25,000×10,000 scale
//	bwexp -exp paperscale -json paperscale.json   # full-scale streamed sweep + artifact
//	bwexp -bench-json               # write the BENCH_<date>.json perf baseline
//	bwexp -exp fig4 -cpuprofile cpu.pb.gz   # profile a sweep (also -memprofile, -trace)
//
// Experiments: fig3 fig4 fig5 fig6 fig7 table1 table2 paperscale
// ablation-policy ablation-interrupt ablation-decay churn detector
// fairness overlay overlay-improve all. Figure 6 and Table 1 reuse
// Figure 4's populations, so "-exp all" runs those simulations once;
// paperscale streams Figure 4 + Table 1 at the paper's full scale and is
// not part of "all".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"time"

	"bwcs/internal/experiments"
	"bwcs/internal/export"
)

// exportFig4 writes the figure 4 populations as per-protocol CSVs plus one
// JSON document.
func exportFig4(dir string, r *experiments.Fig4Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := range r.Populations {
		p := &r.Populations[i]
		name := fmt.Sprintf("fig4_%s.csv", sanitize(p.Protocol.Label))
		if err := writeFile(dir, name, func(w io.Writer) error {
			return export.PopulationCSV(w, p)
		}); err != nil {
			return err
		}
	}
	return writeFile(dir, "fig4.json", func(w io.Writer) error {
		return export.PopulationsJSON(w, r.Populations)
	})
}

// exportFig5 writes each class's populations as CSVs.
func exportFig5(dir string, r *experiments.Fig5Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, cls := range r.Classes {
		for i := range cls.Populations {
			p := &cls.Populations[i]
			name := fmt.Sprintf("fig5_x%d_%s.csv", cls.X, sanitize(p.Protocol.Label))
			if err := writeFile(dir, name, func(w io.Writer) error {
				return export.PopulationCSV(w, p)
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeFile(dir, name string, fn func(io.Writer) error) error {
	f, err := os.Create(dir + string(os.PathSeparator) + name)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeJSONPath writes v as indented JSON to path, creating parent
// directories as needed.
func writeJSONPath(path string, v any) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return strings.ToLower(string(out))
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bwexp:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bwexp", flag.ContinueOnError)
	var (
		exp       = fs.String("exp", "all", "experiment id: fig3 fig4 fig5 fig6 fig7 reconverge table1 table2 paperscale ablation-policy ablation-interrupt ablation-decay churn detector fairness overlay overlay-improve all")
		trees     = fs.Int("trees", 0, "population size (0 = experiment default)")
		tasks     = fs.Int64("tasks", 0, "application size (0 = experiment default)")
		seed      = fs.Uint64("seed", 0, "generator seed (0 = default)")
		threshold = fs.Int("threshold", -1, "onset window threshold (-1 = paper's 300)")
		workers   = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		graphs    = fs.Int("graphs", 60, "host graphs for the overlay study")
		churn     = fs.Int("churn", 6, "churn events per run for the churn study")
		paper     = fs.Bool("paper", false, "use the paper's full scale (25000 trees, 10000 tasks)")
		quiet     = fs.Bool("q", false, "suppress progress timing")
		csvDir    = fs.String("csv", "", "also write machine-readable results (CSV/JSON) into this directory")
		jsonOut   = fs.String("json", "", "write the experiment's JSON artifact to this path (paperscale)")

		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		traceFile  = fs.String("trace", "", "write a runtime execution trace to this file")
		benchJSON  = fs.Bool("bench-json", false, "run the scaled-down figure benchmarks and write BENCH_<date>.json")
		benchOut   = fs.String("bench-out", ".", "directory for the -bench-json baseline file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			return err
		}
		defer rtrace.Stop()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bwexp: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bwexp: memprofile:", err)
			}
		}()
	}

	if *benchJSON {
		_, err := runBenchJSON(out, *benchOut, *trees, *tasks)
		return err
	}

	o := experiments.Default()
	if *paper {
		o = experiments.Paper()
	}
	if *trees > 0 {
		o.Trees = *trees
	}
	if *tasks > 0 {
		o.Tasks = *tasks
	}
	if *seed != 0 {
		o.Seed = *seed
	}
	if *threshold >= 0 {
		o.Threshold = *threshold
	}
	if *workers > 0 {
		o.Workers = *workers
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"fig3", "fig4", "table1", "fig6", "fig5", "table2", "fig7", "reconverge", "ablation-policy", "ablation-interrupt", "ablation-decay", "churn", "detector", "fairness", "overlay", "overlay-improve"}
	}

	// Figure 4's populations back Table 1 and Figure 6.
	var f4 *experiments.Fig4Result
	needFig4 := func() (*experiments.Fig4Result, error) {
		if f4 != nil {
			return f4, nil
		}
		var err error
		f4, err = experiments.Fig4(o)
		return f4, err
	}

	for i, id := range ids {
		if i > 0 {
			fmt.Fprintln(out, "\n"+strings.Repeat("=", 78)+"\n")
		}
		if *quiet {
			o.Progress = nil
		} else {
			o.Progress = progressFunc(id)
		}
		start := time.Now()
		var err error
		switch id {
		case "fig3":
			var r *experiments.Fig3Result
			if r, err = experiments.Fig3(o); err == nil {
				err = r.Render(out)
			}
		case "fig4":
			var r *experiments.Fig4Result
			if r, err = needFig4(); err == nil {
				err = r.Render(out)
			}
			if err == nil && *csvDir != "" {
				err = exportFig4(*csvDir, r)
			}
		case "table1":
			var r4 *experiments.Fig4Result
			if r4, err = needFig4(); err == nil {
				var r *experiments.Table1Result
				if r, err = experiments.Table1(r4); err == nil {
					err = r.Render(out)
				}
			}
		case "fig6":
			var r4 *experiments.Fig4Result
			if r4, err = needFig4(); err == nil {
				var r *experiments.Fig6Result
				if r, err = experiments.Fig6(r4); err == nil {
					err = r.Render(out)
				}
			}
		case "fig5":
			var r *experiments.Fig5Result
			if r, err = experiments.Fig5(o); err == nil {
				err = r.Render(out)
			}
			if err == nil && *csvDir != "" {
				err = exportFig5(*csvDir, r)
			}
		case "table2":
			to := o
			if *tasks == 0 && to.Tasks < 4000 {
				to.Tasks = 4000 // the paper's Table 2 horizon
			}
			var r *experiments.Table2Result
			if r, err = experiments.Table2(to); err == nil {
				err = r.Render(out)
			}
		case "paperscale":
			// Full paper scale by default — 25,000 trees × 10,000 tasks,
			// streamed — unless the caller sized the sweep explicitly.
			po := o
			if !*paper {
				pp := experiments.Paper()
				if *trees == 0 {
					po.Trees = pp.Trees
				}
				if *tasks == 0 {
					po.Tasks = pp.Tasks
				}
			}
			var r *experiments.PaperScaleResult
			if r, err = experiments.PaperScale(po); err == nil {
				err = r.Render(out)
			}
			if err == nil && *jsonOut != "" {
				err = writeJSONPath(*jsonOut, r.JSON())
			}
		case "fig7":
			var r *experiments.Fig7Result
			if r, err = experiments.Fig7(0, 0); err == nil {
				err = r.Render(out)
			}
		case "reconverge":
			var r *experiments.ReconvergeResult
			if r, err = experiments.Reconverge(*tasks, 0); err == nil {
				err = r.Render(out)
			}
			if err == nil && *jsonOut != "" {
				err = writeJSONPath(*jsonOut, r.JSON())
			}
		case "ablation-policy":
			var r *experiments.AblationPolicyResult
			if r, err = experiments.AblationPolicy(o); err == nil {
				err = r.Render(out)
			}
		case "ablation-interrupt":
			var r *experiments.AblationInterruptResult
			if r, err = experiments.AblationInterrupt(o); err == nil {
				err = r.Render(out)
			}
		case "ablation-decay":
			var r *experiments.AblationDecayResult
			if r, err = experiments.AblationDecay(o); err == nil {
				err = r.Render(out)
			}
		case "churn":
			var r *experiments.ChurnResult
			if r, err = experiments.Churn(o, *churn); err == nil {
				err = r.Render(out)
			}
		case "fairness":
			fo := o
			if *trees == 0 && fo.Trees > 150 {
				fo.Trees = 150 // 7 tenant counts × population; keep the sweep interactive
			}
			var r *experiments.FairnessResult
			if r, err = experiments.Fairness(fo); err == nil {
				err = r.Render(out)
			}
		case "detector":
			var r *experiments.DetectorResult
			if r, err = experiments.Detector(o); err == nil {
				err = r.Render(out)
			}
		case "overlay-improve":
			var r *experiments.OverlayImproveResult
			if r, err = experiments.OverlayImprove(o, *graphs/3+1, 0); err == nil {
				err = r.Render(out)
			}
		case "overlay":
			var r *experiments.OverlayResult
			if r, err = experiments.Overlay(o, *graphs); err == nil {
				err = r.Render(out)
			}
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if !*quiet {
			fmt.Fprintf(out, "\n[%s completed in %v]\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

// progressFunc returns an experiments progress callback that rewrites a
// single stderr line per population, throttled so tight sweeps don't
// spend their time printing. Progress goes to stderr so redirected
// stdout stays clean experiment output.
func progressFunc(label string) func(done, total int) {
	var last time.Time
	start := time.Now()
	return func(done, total int) {
		now := time.Now()
		if done < total && now.Sub(last) < 100*time.Millisecond {
			return
		}
		last = now
		rate := float64(done) / time.Since(start).Seconds()
		fmt.Fprintf(os.Stderr, "\r%s: %d/%d trees (%.0f trees/sec)   ", label, done, total, rate)
		if done == total {
			fmt.Fprintln(os.Stderr)
			start = time.Now() // next population (same experiment) restarts the rate
		}
	}
}
