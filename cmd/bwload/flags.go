package main

import (
	"flag"
	"time"
)

// loadConfig is the parsed flag set for one bwload run.
type loadConfig struct {
	children    int
	tasks       int
	waves       int
	warmup      int
	size        int
	chunk       int
	batch       int
	buffers     int
	compute     time.Duration
	rootCompute time.Duration
	waveTimeout time.Duration
	codec       string
	jsonOut     string
	sloP99      time.Duration
	sloFPS      float64
	wireOnly    bool
	wireFrames  int
}

func newFlagSet() *flag.FlagSet {
	return flag.NewFlagSet("bwload", flag.ContinueOnError)
}

func parseFlags(fs *flag.FlagSet, args []string) (*loadConfig, error) {
	cfg := &loadConfig{}
	fs.IntVar(&cfg.children, "children", 2, "worker nodes under the root")
	fs.IntVar(&cfg.tasks, "tasks", 256, "tasks per wave")
	fs.IntVar(&cfg.waves, "waves", 8, "measured waves")
	fs.IntVar(&cfg.warmup, "warmup", 1, "unmeasured warmup waves")
	fs.IntVar(&cfg.size, "size", 256, "task payload bytes (results echo it back)")
	fs.IntVar(&cfg.chunk, "chunk", 4096, "bytes per transfer chunk")
	fs.IntVar(&cfg.batch, "chunk-batch", 0, "chunks per send-port turn on binary links (0 = default)")
	fs.IntVar(&cfg.buffers, "buffers", 3, "task buffers per node (the paper's FB)")
	fs.DurationVar(&cfg.compute, "compute", 0, "per-task stall at each child (0 = wire-bound)")
	fs.DurationVar(&cfg.rootCompute, "root-compute", 25*time.Millisecond,
		"per-task stall at the root, kept slow so tasks cross the wire")
	fs.DurationVar(&cfg.waveTimeout, "wave-timeout", 2*time.Minute, "per-wave deadline")
	fs.StringVar(&cfg.codec, "codec", "auto", "wire codec pin: auto, binary, or gob")
	fs.StringVar(&cfg.jsonOut, "json", "", "write the JSON report to this file (\"-\" = stdout)")
	fs.DurationVar(&cfg.sloP99, "slo-p99", 0, "fail when p99 wave latency exceeds this (0 = off)")
	fs.Float64Var(&cfg.sloFPS, "slo-frames-per-sec", 0, "fail when wire frames/sec falls below this (0 = off)")
	fs.BoolVar(&cfg.wireOnly, "wire-only", false,
		"measure the raw data plane (framing + codec + loopback, no scheduling engine) instead of running task waves")
	fs.IntVar(&cfg.wireFrames, "wire-frames", 50_000, "wire-only: chunk frames to stream per link")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return cfg, nil
}
