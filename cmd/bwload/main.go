// Command bwload drives a sustained synthetic workload through an
// in-process live overlay — one root, N children — and reports wire
// throughput, wave latency percentiles, and allocation pressure. It is
// the repository's load generator for the data plane: the same tree,
// codecs, and chunking knobs as a deployed bwnode overlay, but with
// every node in one process so frames/sec and allocs/task are
// measurable without network noise.
//
// The workload is dispatched in waves: each wave submits -tasks tasks of
// -size bytes (results echo the payload back, so both directions carry
// it) and waits for completion. Wave durations land in a histogram; the
// report carries p50/p99 from its buckets. The first -warmup waves are
// excluded from every measurement.
//
// SLOs turn the report into a gate: -slo-p99 bounds the p99 wave
// latency and -slo-frames-per-sec sets a wire throughput floor; a
// violated SLO makes bwload exit non-zero, so a CI job can assert the
// data plane's performance, not just its correctness.
//
//	bwload -children 2 -tasks 256 -waves 8 -codec binary -json -
//	bwload -codec gob -slo-frames-per-sec 5000
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"bwcs/internal/metrics"
	"bwcs/live"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bwload:", err)
		os.Exit(1)
	}
}

// report is the machine-readable run summary (-json).
type report struct {
	Schema   string `json:"schema"` // "bwcs-load/v1"
	Mode     string `json:"mode"`   // "waves" or "wire-only"
	Codec    string `json:"codec"`
	Children int    `json:"children"`
	Tasks    int    `json:"tasksPerWave"`
	Waves    int    `json:"waves"`
	Size     int    `json:"payloadBytes"`
	Chunk    int    `json:"chunkBytes"`
	Batch    int    `json:"chunkBatch"`

	TasksPerSec    float64 `json:"tasksPerSec"`
	FramesPerSec   float64 `json:"framesPerSec"`
	BytesPerSec    float64 `json:"bytesPerSec"`
	P50WaveMS      float64 `json:"p50WaveMs,omitempty"`
	P99WaveMS      float64 `json:"p99WaveMs,omitempty"`
	AllocsPerTask  float64 `json:"allocsPerTask,omitempty"`
	AllocsPerFrame float64 `json:"allocsPerFrame,omitempty"`
	FramesSent     int64   `json:"framesSent"`
	BytesSent      int64   `json:"bytesSent"`
	WaveMS         []int64 `json:"waveMs,omitempty"`

	SLOViolations []string `json:"sloViolations,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := newFlagSet()
	cfg, err := parseFlags(fs, args)
	if err != nil {
		return err
	}

	var pin []live.Codec
	switch cfg.codec {
	case "auto":
	case "binary":
		pin = []live.Codec{live.CodecBinary}
	case "gob":
		pin = []live.Codec{live.CodecGob}
	default:
		return fmt.Errorf("-codec must be auto, binary, or gob (got %q)", cfg.codec)
	}

	if cfg.wireOnly {
		return runWireOnly(cfg, out)
	}

	// The children echo after an optional stall; the root's compute is
	// kept slow so nearly every task crosses the wire — bwload measures
	// the data plane, not local compute.
	childCompute := func(t live.Task) ([]byte, error) {
		if cfg.compute > 0 {
			time.Sleep(cfg.compute)
		}
		return t.Payload, nil
	}
	rootCompute := func(t live.Task) ([]byte, error) {
		time.Sleep(cfg.rootCompute)
		return t.Payload, nil
	}

	rootOpts := []live.Option{
		live.WithListen("127.0.0.1:0"),
		live.WithCompute(rootCompute),
		live.WithBuffers(cfg.buffers),
		live.WithChunkSize(cfg.chunk),
	}
	if pin != nil {
		rootOpts = append(rootOpts, live.WithWireCodecs(pin...))
	}
	if cfg.batch != 0 {
		rootOpts = append(rootOpts, live.WithChunkBatch(cfg.batch))
	}
	root, err := live.Start("root", rootOpts...)
	if err != nil {
		return err
	}
	defer root.Close()

	nodes := []*live.Node{root}
	for i := 0; i < cfg.children; i++ {
		opts := []live.Option{
			live.WithParent(root.Addr()),
			live.WithCompute(childCompute),
			live.WithBuffers(cfg.buffers),
			live.WithChunkSize(cfg.chunk),
		}
		if pin != nil {
			opts = append(opts, live.WithWireCodecs(pin...))
		}
		if cfg.batch != 0 {
			opts = append(opts, live.WithChunkBatch(cfg.batch))
		}
		w, err := live.Start(fmt.Sprintf("w%d", i+1), opts...)
		if err != nil {
			return err
		}
		defer w.Close()
		nodes = append(nodes, w)
	}

	reg := metrics.NewRegistry()
	waveHist := reg.Histogram("load_wave_milliseconds",
		"wall-clock duration of one completed task wave", msBounds())

	wave := func(n int) (time.Duration, error) {
		work := make([]live.Task, cfg.tasks)
		for i := range work {
			payload := make([]byte, cfg.size)
			for j := range payload {
				payload[j] = byte((n+i)*j + i)
			}
			work[i] = live.Task{ID: uint64(i + 1), Payload: payload}
		}
		start := time.Now()
		results, err := root.RunTimeout(work, cfg.waveTimeout)
		if err != nil {
			return 0, fmt.Errorf("wave %d: %w", n, err)
		}
		if len(results) != cfg.tasks {
			return 0, fmt.Errorf("wave %d: %d results, want %d", n, len(results), cfg.tasks)
		}
		return time.Since(start), nil
	}

	for n := 0; n < cfg.warmup; n++ {
		if _, err := wave(n); err != nil {
			return err
		}
	}

	framesBefore, bytesBefore := wireTotals(nodes)
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	measureStart := time.Now()

	waveMS := make([]int64, 0, cfg.waves)
	for n := 0; n < cfg.waves; n++ {
		d, err := wave(cfg.warmup + n)
		if err != nil {
			return err
		}
		ms := d.Milliseconds()
		waveHist.Observe(ms)
		waveMS = append(waveMS, ms)
	}

	elapsed := time.Since(measureStart)
	framesAfter, bytesAfter := wireTotals(nodes)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	totalTasks := cfg.waves * cfg.tasks
	hist := histFamily(reg.Snapshot(), "load_wave_milliseconds")
	rep := report{
		Schema:   "bwcs-load/v1",
		Mode:     "waves",
		Codec:    cfg.codec,
		Children: cfg.children,
		Tasks:    cfg.tasks,
		Waves:    cfg.waves,
		Size:     cfg.size,
		Chunk:    cfg.chunk,
		Batch:    cfg.batch,

		TasksPerSec:   float64(totalTasks) / elapsed.Seconds(),
		FramesPerSec:  float64(framesAfter-framesBefore) / elapsed.Seconds(),
		BytesPerSec:   float64(bytesAfter-bytesBefore) / elapsed.Seconds(),
		P50WaveMS:     quantile(hist, 0.50),
		P99WaveMS:     quantile(hist, 0.99),
		AllocsPerTask: float64(msAfter.Mallocs-msBefore.Mallocs) / float64(totalTasks),
		FramesSent:    framesAfter - framesBefore,
		BytesSent:     bytesAfter - bytesBefore,
		WaveMS:        waveMS,
	}

	if cfg.sloP99 > 0 && rep.P99WaveMS > float64(cfg.sloP99.Milliseconds()) {
		rep.SLOViolations = append(rep.SLOViolations,
			fmt.Sprintf("p99 wave latency %.0fms exceeds SLO %v", rep.P99WaveMS, cfg.sloP99))
	}
	if cfg.sloFPS > 0 && rep.FramesPerSec < cfg.sloFPS {
		rep.SLOViolations = append(rep.SLOViolations,
			fmt.Sprintf("%.0f frames/sec below SLO floor %.0f", rep.FramesPerSec, cfg.sloFPS))
	}

	return emit(cfg, &rep, out, func(w io.Writer) {
		fmt.Fprintf(w, "%s codec, %d children, %d waves x %d tasks x %dB:\n",
			cfg.codec, cfg.children, cfg.waves, cfg.tasks, cfg.size)
		fmt.Fprintf(w, "  %.0f tasks/s, %.0f frames/s, %.1f MB/s wire\n",
			rep.TasksPerSec, rep.FramesPerSec, rep.BytesPerSec/1e6)
		fmt.Fprintf(w, "  wave p50 %.0fms, p99 %.0fms; %.0f allocs/task\n",
			rep.P50WaveMS, rep.P99WaveMS, rep.AllocsPerTask)
	})
}

// runWireOnly measures the raw data plane through live.WireBench: the
// same framed connections the overlay runs on, minus the scheduling
// engine — the codec comparison without round-trip noise. -codec auto
// resolves to binary (there is no peer to negotiate with).
func runWireOnly(cfg *loadConfig, out io.Writer) error {
	codec := live.CodecBinary
	if cfg.codec == "gob" {
		codec = live.CodecGob
	}
	batch := cfg.batch
	if batch == 0 {
		batch = 8
	}
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	res, err := live.WireBench(codec, cfg.children, cfg.wireFrames, cfg.size, batch)
	if err != nil {
		return err
	}
	runtime.ReadMemStats(&msAfter)
	rep := report{
		Schema:   "bwcs-load/v1",
		Mode:     "wire-only",
		Codec:    codec.String(),
		Children: cfg.children,
		Size:     cfg.size,
		Chunk:    cfg.chunk,
		Batch:    batch,

		FramesPerSec:   res.FramesPerSec(),
		BytesPerSec:    res.BytesPerSec(),
		AllocsPerFrame: float64(msAfter.Mallocs-msBefore.Mallocs) / float64(res.Frames),
		FramesSent:     res.Frames,
		BytesSent:      res.Bytes,
	}
	if cfg.sloFPS > 0 && rep.FramesPerSec < cfg.sloFPS {
		rep.SLOViolations = append(rep.SLOViolations,
			fmt.Sprintf("%.0f frames/sec below SLO floor %.0f", rep.FramesPerSec, cfg.sloFPS))
	}
	return emit(cfg, &rep, out, func(w io.Writer) {
		fmt.Fprintf(w, "%s codec, wire only, %d links x %d frames x %dB (batch %d):\n",
			rep.Codec, cfg.children, cfg.wireFrames, cfg.size, batch)
		fmt.Fprintf(w, "  %.0f frames/s, %.1f MB/s wire, %.2f allocs/frame\n",
			rep.FramesPerSec, rep.BytesPerSec/1e6, rep.AllocsPerFrame)
	})
}

// emit writes the report — JSON to -json's target, the human summary
// otherwise — and turns SLO violations into a non-zero exit.
func emit(cfg *loadConfig, rep *report, out io.Writer, text func(io.Writer)) error {
	if cfg.jsonOut != "" {
		w := out
		if cfg.jsonOut != "-" {
			f, err := os.Create(cfg.jsonOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	}
	if cfg.jsonOut != "-" {
		text(out)
	}
	for _, v := range rep.SLOViolations {
		fmt.Fprintln(out, "SLO VIOLATED:", v)
	}
	if len(rep.SLOViolations) > 0 {
		return fmt.Errorf("%d SLO violation(s)", len(rep.SLOViolations))
	}
	return nil
}

// wireTotals sums the wire volume counters over every node in the tree.
// Each node counts both directions of its own links, so the total counts
// every frame twice (once sent, once received) — deltas and ratios are
// what matter, and they are codec-comparable.
func wireTotals(nodes []*live.Node) (frames, bytes int64) {
	for _, n := range nodes {
		s := n.Stats()
		frames += s.FramesSent
		bytes += s.BytesSent
	}
	return frames, bytes
}

// msBounds is an exponential millisecond bucket ladder, 1ms..~2min.
func msBounds() []int64 {
	var b []int64
	for v := int64(1); v <= 128_000; v *= 2 {
		b = append(b, v)
	}
	return b
}

// histFamily pulls one histogram family out of a snapshot.
func histFamily(snap metrics.Snapshot, name string) metrics.Family {
	for _, f := range snap {
		if f.Name == name {
			return f
		}
	}
	return metrics.Family{}
}

// quantile estimates a quantile from cumulative histogram buckets: the
// smallest bound whose cumulative count covers q of the observations
// (the Prometheus upper-bound convention, without interpolation — wave
// counts are small, so a bucket bound is the honest answer).
func quantile(f metrics.Family, q float64) float64 {
	if f.Count == 0 {
		return 0
	}
	need := int64(math.Ceil(q * float64(f.Count)))
	if need < 1 {
		need = 1
	}
	for i, cum := range f.Buckets {
		if cum >= need {
			return float64(f.Bounds[i])
		}
	}
	// Observations beyond the last bound: report the mean of the
	// overflow as a best effort.
	return float64(f.Sum) / float64(f.Count)
}
