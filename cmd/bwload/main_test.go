package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestWavesBothCodecs runs a small in-process tree under each codec pin
// and checks the JSON report is well-formed with real traffic in it.
func TestWavesBothCodecs(t *testing.T) {
	for _, codec := range []string{"binary", "gob"} {
		t.Run(codec, func(t *testing.T) {
			var out bytes.Buffer
			err := run([]string{
				"-children", "2", "-tasks", "16", "-waves", "2", "-warmup", "1",
				"-size", "512", "-codec", codec, "-root-compute", "5ms", "-json", "-",
			}, &out)
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out.String())
			}
			var rep report
			if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
				t.Fatalf("report not JSON: %v\n%s", err, out.String())
			}
			if rep.Schema != "bwcs-load/v1" || rep.Mode != "waves" || rep.Codec != codec {
				t.Fatalf("report header = %q/%q/%q", rep.Schema, rep.Mode, rep.Codec)
			}
			if rep.FramesSent == 0 || rep.FramesPerSec <= 0 {
				t.Fatalf("no wire traffic measured: %+v", rep)
			}
			if len(rep.WaveMS) != 2 {
				t.Fatalf("wave samples = %d, want 2", len(rep.WaveMS))
			}
			if rep.P99WaveMS < rep.P50WaveMS {
				t.Fatalf("p99 %f < p50 %f", rep.P99WaveMS, rep.P50WaveMS)
			}
		})
	}
}

// TestWireOnlyBothCodecs exercises the engine-free data-plane mode.
func TestWireOnlyBothCodecs(t *testing.T) {
	for _, codec := range []string{"binary", "gob"} {
		t.Run(codec, func(t *testing.T) {
			var out bytes.Buffer
			err := run([]string{
				"-wire-only", "-children", "2", "-wire-frames", "500",
				"-size", "256", "-codec", codec, "-json", "-",
			}, &out)
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out.String())
			}
			var rep report
			if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
				t.Fatalf("report not JSON: %v\n%s", err, out.String())
			}
			if rep.Mode != "wire-only" || rep.Codec != codec {
				t.Fatalf("report header = %q/%q", rep.Mode, rep.Codec)
			}
			if rep.FramesSent != 1000 {
				t.Fatalf("FramesSent = %d, want 1000 (2 links x 500)", rep.FramesSent)
			}
			if rep.FramesPerSec <= 0 {
				t.Fatalf("frames/sec not measured: %+v", rep)
			}
		})
	}
}

// TestSLOViolationFails pins the gate: an impossible frames/sec floor
// must produce a violation and a non-nil error.
func TestSLOViolationFails(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-wire-only", "-children", "1", "-wire-frames", "100", "-size", "64",
		"-codec", "binary", "-slo-frames-per-sec", "1e18",
	}, &out)
	if err == nil {
		t.Fatalf("impossible SLO passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "SLO VIOLATED") {
		t.Fatalf("violation not reported:\n%s", out.String())
	}
}
