// Command bwtrace merges per-node flight-recorder dumps from a live
// overlay run into one causal timeline.
//
// Capture dumps with bwnode -trace-out, or scrape /debug/events from each
// node's status server, then:
//
//	bwtrace root.json w1.json w2.json            # print the merged timeline
//	bwtrace -task 7 root.json w1.json            # one task's journey only
//	bwtrace -chrome trace.json root.json w1.json # Perfetto-loadable export
//	bwtrace -verify root.json w1.json            # protocol-conformance replay
//
// Clocks are aligned per link from matched frame send/receive event pairs
// (the trace context every chunk and result frame carries), and the merge
// never orders an event before the peer event that caused it, so the
// printed timeline reads as what actually happened — a result lost to a
// severed link shows as send → sever → replay → ack as linked lines
// across both nodes. -verify replays the merged timeline through the same
// internal/trace conformance checker that validates the simulator.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bwcs/live"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bwtrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bwtrace", flag.ContinueOnError)
	var (
		chromeOut = fs.String("chrome", "", "write Chrome trace-event JSON (Perfetto-loadable) to this file")
		verify    = fs.Bool("verify", false, "replay the merged timeline through the protocol-conformance checker")
		task      = fs.Uint64("task", 0, "print only the named task's journey (plus its recovery context)")
		quiet     = fs.Bool("q", false, "suppress the timeline listing (useful with -chrome or -verify)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("usage: bwtrace [-chrome out.json] [-verify] [-task id] dump.json...")
	}

	dumps := make(map[string]live.TraceDump, len(paths))
	for _, p := range paths {
		d, err := loadDump(p)
		if err != nil {
			return err
		}
		if prev, dup := dumps[d.Node]; dup {
			return fmt.Errorf("two dumps for node %q (%d and %d events)", d.Node, len(prev.Events), len(d.Events))
		}
		dumps[d.Node] = d
	}
	merged := mergeDumps(dumps)

	if !*quiet {
		printTimeline(os.Stdout, merged, *task)
	}
	if *chromeOut != "" {
		f, err := os.Create(*chromeOut)
		if err != nil {
			return err
		}
		if err := writeChrome(f, merged); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bwtrace: wrote %s (load at ui.perfetto.dev)\n", *chromeOut)
	}
	if *verify {
		if err := verifyMerged(merged, dumps); err != nil {
			return fmt.Errorf("conformance: %w", err)
		}
		fmt.Fprintln(os.Stderr, "bwtrace: merged timeline passes the conformance replay")
	}
	return nil
}

// printTimeline lists the merged timeline, one event per line. With a
// task filter, only that task's events print — its journey — plus the
// session and recovery events that shape it (sever, reconnect, revive).
func printTimeline(w *os.File, merged []MergedEvent, task uint64) {
	for _, m := range merged {
		e := m.Ev
		if task != 0 && e.Task != task {
			switch e.Kind {
			case live.EvSever, live.EvReconnect, live.EvRevive, live.EvHello, live.EvHelloAck:
				// Recovery context prints even when filtering.
			default:
				continue
			}
		}
		line := fmt.Sprintf("%12s %-12s %-16s", fmtNS(m.At), m.Node, e.Kind)
		if e.Task != 0 {
			line += fmt.Sprintf(" task=%d", e.Task)
		}
		if e.Origin != "" {
			line += fmt.Sprintf(" origin=%s", e.Origin)
		}
		if e.Peer != "" {
			line += fmt.Sprintf(" peer=%s", e.Peer)
		}
		if e.Off != 0 {
			line += fmt.Sprintf(" off=%d", e.Off)
		}
		if e.Value != 0 {
			line += fmt.Sprintf(" value=%d", e.Value)
		}
		if e.CauseSeq != 0 && e.CausePeer != "" {
			line += fmt.Sprintf("  <- %s#%d", e.CausePeer, e.CauseSeq)
		}
		fmt.Fprintln(w, line)
	}
}

// fmtNS renders an aligned timestamp relative to the merge origin.
func fmtNS(ns int64) string {
	return fmt.Sprintf("%+.6fms", float64(ns)/float64(time.Millisecond))
}
