package main

// Conformance verification of a merged live timeline: convert the
// flight-recorder vocabulary into internal/trace events and replay them
// through the same checker that validates the deterministic engine. The
// live overlay schedules on measured link estimates, so the sim-only
// ground-truth priority check stays off, and a faulty run legitimately
// ends with tasks in flight, so the drain check stays off too; what the
// replay does verify is the protocol's structural rules — every fresh
// dispatch served a registered request of a child with no transfer already
// in flight, from a task the sender actually held, through every sever,
// requeue, and replay in the timeline.

import (
	"fmt"
	"sort"

	"bwcs/internal/sim"
	"bwcs/internal/trace"
	"bwcs/internal/tree"
	"bwcs/live"
)

// topology reconstructs the overlay tree from a merged timeline: an edge
// parent→child exists where the parent's recorder served the child's
// hello or dispatched to it. Returns the tree and the name→ID mapping.
func topology(merged []MergedEvent, dumps map[string]live.TraceDump) (*tree.Tree, map[string]tree.NodeID, error) {
	children := map[string]map[string]bool{}
	parentOf := map[string]string{}
	root := ""
	for name, d := range dumps {
		if d.Root {
			root = name
		}
	}
	for _, m := range merged {
		e := m.Ev
		switch e.Kind {
		case live.EvRequestServed, live.EvChunkSend:
			// Parent-side-only events: Peer names a child. (Hellos are
			// recorded on both sides with different Peer meanings, so they
			// are not used for edges.)
			if e.Peer == "" || e.Peer == m.Node {
				continue
			}
			if children[m.Node] == nil {
				children[m.Node] = map[string]bool{}
			}
			if !children[m.Node][e.Peer] {
				children[m.Node][e.Peer] = true
				parentOf[e.Peer] = m.Node
			}
		}
	}
	if root == "" {
		// No dump claimed root: the node that is nobody's child.
		names := make([]string, 0, len(dumps))
		for n := range dumps {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if _, hasParent := parentOf[n]; !hasParent {
				root = n
				break
			}
		}
	}
	if root == "" {
		return nil, nil, fmt.Errorf("bwtrace: cannot determine the root node")
	}

	tr := tree.New(1)
	ids := map[string]tree.NodeID{root: tr.Root()}
	queue := []string{root}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		kids := make([]string, 0, len(children[p]))
		for c := range children[p] {
			kids = append(kids, c)
		}
		sort.Strings(kids)
		for _, c := range kids {
			if _, done := ids[c]; done {
				continue
			}
			ids[c] = tr.AddChild(ids[p], 1, 1)
			queue = append(queue, c)
		}
	}
	return tr, ids, nil
}

// convert maps a merged live timeline onto internal/trace events. Requests
// and dispatch decisions come from the parent side (recorded in the same
// critical section as the state change, so serviceability order is
// exact); deliveries come from the child side when the child's dump is
// loaded (its task-received precedes everything the child does with the
// task), and from the parent's final chunk ack otherwise.
func convert(merged []MergedEvent, ids map[string]tree.NodeID, dumps map[string]live.TraceDump) []trace.Event {
	out := make([]trace.Event, 0, len(merged))
	for _, m := range merged {
		e := m.Ev
		node, ok := ids[m.Node]
		if !ok {
			continue
		}
		peer, peerOK := ids[e.Peer]
		at := sim.Time(m.At)
		switch e.Kind {
		case live.EvRequestServed:
			if peerOK {
				out = append(out, trace.Event{At: at, Kind: trace.Request, Node: peer, Peer: -1, Value: e.Value})
			}
		case live.EvChunkSend:
			if peerOK {
				out = append(out, trace.Event{At: at, Kind: trace.SendStart, Node: node, Peer: peer, Value: e.Value})
			}
		case live.EvChunkResume:
			if peerOK {
				out = append(out, trace.Event{At: at, Kind: trace.SendResume, Node: node, Peer: peer, Value: int64(e.Off)})
			}
		case live.EvChunkInterrupt:
			if peerOK {
				out = append(out, trace.Event{At: at, Kind: trace.SendInterrupt, Node: node, Peer: peer, Value: int64(e.Off)})
			}
		case live.EvTaskReceived:
			// Child-side delivery: this node received; the sender is Peer.
			if peerOK {
				out = append(out, trace.Event{At: at, Kind: trace.SendDone, Node: peer, Peer: node})
			}
		case live.EvChunkAck:
			// Parent-side delivery confirmation: used only when the child's
			// own dump is absent, else the child-side event already emitted
			// the SendDone.
			if _, childLoaded := dumps[e.Peer]; !childLoaded && peerOK && e.Value == 1 {
				out = append(out, trace.Event{At: at, Kind: trace.SendDone, Node: node, Peer: peer})
			}
		case live.EvRequeue:
			if peerOK {
				out = append(out, trace.Event{At: at, Kind: trace.Requeue, Node: node, Peer: peer})
			}
		case live.EvComputeStart:
			out = append(out, trace.Event{At: at, Kind: trace.ComputeStart, Node: node, Peer: -1})
		case live.EvComputeDone:
			out = append(out, trace.Event{At: at, Kind: trace.ComputeDone, Node: node, Peer: -1})
		}
	}
	return out
}

// verifyMerged replays the merged timeline through the conformance
// checker. Tasks is the root pool bound: every distinct task ID seen.
func verifyMerged(merged []MergedEvent, dumps map[string]live.TraceDump) error {
	tr, ids, err := topology(merged, dumps)
	if err != nil {
		return err
	}
	tasks := map[uint64]bool{}
	for _, m := range merged {
		if m.Ev.Task != 0 {
			tasks[m.Ev.Task] = true
		}
	}
	rp := &trace.Replay{Tree: tr, Tasks: int64(len(tasks))}
	if err := rp.Run(convert(merged, ids, dumps)); err != nil {
		return err
	}
	if rp.Fresh == 0 && len(merged) > 0 {
		return fmt.Errorf("bwtrace: timeline contains no dispatches to verify")
	}
	return nil
}
