package main

// Chrome trace-event JSON export of a merged timeline, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Each overlay node
// becomes a process; computations render as duration slices, every other
// event as a thin slice; wire-carried causality renders as flow arrows
// from the sending event to the receiving one.
//
// Fields are written by hand in a fixed order so the output is
// byte-stable for a given timeline — the golden test depends on it.

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"bwcs/live"
)

// chromeTS renders an aligned nanosecond timestamp as trace-event
// microseconds. Merged timestamps can be slightly negative for events
// before the root's first sample on a skewed clock; the export shifts all
// of them so the earliest is 0.
func chromeTS(ns int64) string {
	us := ns / 1000
	frac := ns % 1000
	return fmt.Sprintf("%d.%03d", us, frac)
}

// eventName labels a slice for the trace viewer.
func eventName(e live.Event) string {
	if e.Task != 0 {
		return fmt.Sprintf("%s task %d", e.Kind, e.Task)
	}
	return e.Kind.String()
}

// writeChrome renders the merged timeline as Chrome trace-event JSON.
func writeChrome(w io.Writer, merged []MergedEvent) error {
	// Stable process IDs: node names sorted, pid = index+1.
	nodeSet := map[string]bool{}
	for _, m := range merged {
		nodeSet[m.Node] = true
	}
	names := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		names = append(names, n)
	}
	sort.Strings(names)
	pid := make(map[string]int, len(names))
	for i, n := range names {
		pid[n] = i + 1
	}

	// Shift so the earliest event lands at ts 0.
	var base int64
	for i, m := range merged {
		if i == 0 || m.At < base {
			base = m.At
		}
	}

	// Flow arrows: one per event whose cause is present in the timeline.
	type key struct {
		node string
		seq  uint64
	}
	index := make(map[key]int, len(merged))
	for i, m := range merged {
		index[key{m.Node, m.Ev.Seq}] = i
	}

	if _, err := fmt.Fprint(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(line string) error {
		if !first {
			if _, err := fmt.Fprint(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := fmt.Fprint(w, line)
		return err
	}
	for _, n := range names {
		if err := emit(fmt.Sprintf("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":1,\"args\":{\"name\":%s}}",
			pid[n], strconv.Quote(n))); err != nil {
			return err
		}
	}

	// Compute durations: ComputeDone carries the elapsed ns; render the
	// pair as one slice anchored at the start event.
	computeStart := map[key]int64{} // (node, task) -> aligned start; seq abused as task id
	flowID := 0
	for _, m := range merged {
		e := m.Ev
		ts := chromeTS(m.At - base)
		switch e.Kind {
		case live.EvComputeStart:
			computeStart[key{m.Node, e.Task}] = m.At
			continue // the Done event renders the slice
		case live.EvComputeDone:
			start, ok := computeStart[key{m.Node, e.Task}]
			if !ok {
				start = m.At - e.Value
			}
			delete(computeStart, key{m.Node, e.Task})
			if err := emit(fmt.Sprintf("{\"name\":%s,\"cat\":\"compute\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":%d,\"tid\":1}",
				strconv.Quote(fmt.Sprintf("compute task %d", e.Task)), chromeTS(start-base), chromeTS(m.At-start), pid[m.Node])); err != nil {
				return err
			}
		default:
			if err := emit(fmt.Sprintf("{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%s,\"dur\":1.000,\"pid\":%d,\"tid\":1}",
				strconv.Quote(eventName(e)), strconv.Quote(category(e.Kind)), ts, pid[m.Node])); err != nil {
				return err
			}
		}
		if e.CauseSeq != 0 && e.CausePeer != "" {
			if ci, ok := index[key{e.CausePeer, e.CauseSeq}]; ok {
				flowID++
				cause := merged[ci]
				if err := emit(fmt.Sprintf("{\"name\":\"wire\",\"cat\":\"flow\",\"ph\":\"s\",\"ts\":%s,\"pid\":%d,\"tid\":1,\"id\":%d}",
					chromeTS(cause.At-base), pid[cause.Node], flowID)); err != nil {
					return err
				}
				if err := emit(fmt.Sprintf("{\"name\":\"wire\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"ts\":%s,\"pid\":%d,\"tid\":1,\"id\":%d}",
					ts, pid[m.Node], flowID)); err != nil {
					return err
				}
			}
		}
	}
	_, err := fmt.Fprint(w, "\n]}\n")
	return err
}

// category groups event kinds into trace-viewer categories.
func category(k live.EventKind) string {
	switch k {
	case live.EvChunkSend, live.EvChunkResume, live.EvChunkInterrupt, live.EvChunkRecv,
		live.EvChunkAck, live.EvTaskReceived:
		return "transfer"
	case live.EvResultSend, live.EvResultReplay, live.EvResultRecv, live.EvResultDedupe,
		live.EvResultAck, live.EvResultCollect:
		return "result"
	case live.EvRequestSent, live.EvRequestServed:
		return "request"
	case live.EvHeartbeatMiss, live.EvSever, live.EvReconnect, live.EvRequeue, live.EvRevive:
		return "recovery"
	default:
		return "session"
	}
}
