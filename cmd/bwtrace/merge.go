package main

// Merging per-node flight-recorder dumps into one causal timeline.
//
// Each node's events carry timestamps on its own monotonic clock. The
// merger first aligns clocks per link: every event caused by a received
// frame names the sending node's event (CausePeer/CauseSeq), so each
// matched pair bounds the clock offset from one side, and the two
// directions of a link bound it from both — the classic symmetric-delay
// estimate offset = (d1 - d2)/2 over the minimum observed deltas. Offsets
// compose along the tree from the root. Nodes that share no usable pairs
// fall back to wall-clock epoch differences.
//
// The merge itself is causal, not just temporal: a per-node cursor k-way
// merge that never emits an event before the peer event it names. Clock
// alignment makes the result close to true order; the causal constraint
// makes cross-node arrows consistent even where alignment is off by a
// transit time. Causality follows real message flow, so the constraint
// graph is acyclic and the merge cannot deadlock; a cause evicted from its
// ring (seq <= Dropped) or absent from the loaded dumps counts as
// satisfied.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"bwcs/live"
)

// MergedEvent is one event of the merged timeline: the original recorder
// event, the node it came from, and its timestamp aligned to the root
// node's clock.
type MergedEvent struct {
	Node string
	At   int64 // ns on the root's (first dump's) clock
	Ev   live.Event
}

func loadDump(path string) (live.TraceDump, error) {
	var d live.TraceDump
	f, err := os.Open(path)
	if err != nil {
		return d, err
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(&d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	if d.Node == "" {
		return d, fmt.Errorf("%s: not a trace dump (no node name)", path)
	}
	return d, nil
}

// alignable reports whether an event is a usable clock-alignment sample: a
// frame-caused event whose transit is one frame, not a whole transfer.
// EvTaskReceived's cause is the segment dispatch, separated by the entire
// payload stream, so it would poison the minimum.
func alignable(e live.Event) bool {
	return e.CauseSeq != 0 && e.CausePeer != "" && e.Kind != live.EvTaskReceived
}

// clockShifts computes, for every dump, the shift that maps its local
// timestamps onto the root dump's clock. Dumps are keyed by node name.
func clockShifts(dumps map[string]live.TraceDump, root string) map[string]int64 {
	// byNodeSeq resolves a (node, seq) cause reference to its timestamp.
	byNodeSeq := make(map[string]map[uint64]int64, len(dumps))
	for name, d := range dumps {
		m := make(map[uint64]int64, len(d.Events))
		for _, e := range d.Events {
			m[e.Seq] = e.At
		}
		byNodeSeq[name] = m
	}

	// delta[a][b] is the minimum observed (receiver local - sender local)
	// over frames a sent to b: min transit plus the base offset.
	delta := make(map[string]map[string]int64)
	seen := make(map[string]map[string]bool)
	for name, d := range dumps {
		for _, e := range d.Events {
			if !alignable(e) {
				continue
			}
			causeAt, ok := byNodeSeq[e.CausePeer][e.CauseSeq]
			if !ok {
				continue
			}
			dt := e.At - causeAt
			if delta[e.CausePeer] == nil {
				delta[e.CausePeer] = make(map[string]int64)
				seen[e.CausePeer] = make(map[string]bool)
			}
			if !seen[e.CausePeer][name] || dt < delta[e.CausePeer][name] {
				delta[e.CausePeer][name] = dt
				seen[e.CausePeer][name] = true
			}
		}
	}

	// Walk outward from the root, composing per-link offsets.
	shift := map[string]int64{root: 0}
	queue := []string{root}
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		// Deterministic visit order.
		var peers []string
		for b := range dumps {
			if _, done := shift[b]; !done && (seen[a][b] || seen[b][a]) {
				peers = append(peers, b)
			}
		}
		sort.Strings(peers)
		for _, b := range peers {
			var baseDiff int64 // baseB - baseA
			dAB, okAB := delta[a][b]
			dBA, okBA := delta[b][a]
			switch {
			case okAB && okBA:
				// dAB = transit + baseA - baseB; dBA = transit' + baseB - baseA.
				baseDiff = (dBA - dAB) / 2
			case okAB:
				baseDiff = -dAB // assume zero transit
			case okBA:
				baseDiff = dBA
			}
			shift[b] = shift[a] + baseDiff
			queue = append(queue, b)
		}
	}
	// Anything unreached (no link pairs at all): wall-clock fallback.
	rootEpoch := dumps[root].EpochUnixNano
	for name, d := range dumps {
		if _, ok := shift[name]; !ok {
			shift[name] = d.EpochUnixNano - rootEpoch
		}
	}
	return shift
}

// mergeDumps builds the single causal timeline from per-node dumps.
func mergeDumps(dumps map[string]live.TraceDump) []MergedEvent {
	root := ""
	names := make([]string, 0, len(dumps))
	for name, d := range dumps {
		names = append(names, name)
		if d.Root {
			root = name
		}
	}
	sort.Strings(names)
	if root == "" && len(names) > 0 {
		root = names[0]
	}
	shift := clockShifts(dumps, root)

	// Per-node cursors; per-node event order (ascending Seq) is preserved,
	// so "cause emitted" reduces to a per-node high-water mark.
	cursor := make(map[string]int, len(dumps))
	emitted := make(map[string]uint64, len(dumps))
	satisfied := func(e live.Event) bool {
		if e.CauseSeq == 0 || e.CausePeer == "" {
			return true
		}
		d, ok := dumps[e.CausePeer]
		if !ok || len(d.Events) == 0 {
			return true // cause node's dump not loaded (or empty)
		}
		if e.CauseSeq <= uint64(d.Dropped) {
			return true // cause evicted from its ring before the dump
		}
		if e.CauseSeq > d.Events[len(d.Events)-1].Seq {
			return true // cause recorded after the dump was taken
		}
		return e.CauseSeq <= emitted[e.CausePeer]
	}

	total := 0
	for _, d := range dumps {
		total += len(d.Events)
	}
	out := make([]MergedEvent, 0, total)
	for len(out) < total {
		bestName := ""
		var bestAt int64
		// Pass 1: the earliest eligible head. Pass 2 (fallback, cannot
		// happen for causally consistent dumps): the earliest head.
		for pass := 0; pass < 2 && bestName == ""; pass++ {
			for _, name := range names {
				d := dumps[name]
				i := cursor[name]
				if i >= len(d.Events) {
					continue
				}
				e := d.Events[i]
				if pass == 0 && !satisfied(e) {
					continue
				}
				at := e.At + shift[name]
				if bestName == "" || at < bestAt || (at == bestAt && name < bestName) {
					bestName, bestAt = name, at
				}
			}
		}
		e := dumps[bestName].Events[cursor[bestName]]
		cursor[bestName]++
		emitted[bestName] = e.Seq
		out = append(out, MergedEvent{Node: bestName, At: e.At + shift[bestName], Ev: e})
	}
	return out
}
