package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bwcs/live"
)

var update = flag.Bool("update", false, "rewrite golden files")

// synthDumps builds a hand-crafted two-node run — one complete task
// journey, hello through result collection — with the worker's clock
// skewed a full millisecond ahead of the root's and every frame taking
// 500ns of transit. The symmetric-delay alignment must recover the skew
// exactly, so the merged timeline below is asserted in true-time order.
func synthDumps() map[string]live.TraceDump {
	const skew = 1_000_000 // w1 local clock = true time + skew
	w1 := func(seq uint64, truth int64, e live.Event) live.Event {
		e.Seq, e.At = seq, truth+skew
		return e
	}
	rt := func(seq uint64, truth int64, e live.Event) live.Event {
		e.Seq, e.At = seq, truth
		return e
	}
	return map[string]live.TraceDump{
		"root": {
			Node: "root", Root: true, EpochUnixNano: 1_700_000_000_000_000_000,
			Events: []live.Event{
				rt(1, 1500, live.Event{Kind: live.EvHello, Peer: "w1", WireSeq: 1, CausePeer: "w1", CauseSeq: 1}),
				rt(2, 2600, live.Event{Kind: live.EvRequestServed, Peer: "w1", Value: 3, WireSeq: 2, CausePeer: "w1", CauseSeq: 3}),
				rt(3, 3000, live.Event{Kind: live.EvChunkSend, Task: 1, Peer: "w1"}),
				rt(4, 4200, live.Event{Kind: live.EvChunkAck, Task: 1, Peer: "w1", Off: 4096, Value: 1, WireSeq: 3, CausePeer: "w1", CauseSeq: 5}),
				rt(5, 4900, live.Event{Kind: live.EvResultRecv, Task: 1, Origin: "w1", Peer: "w1", WireSeq: 5, CausePeer: "w1", CauseSeq: 8}),
				rt(6, 5000, live.Event{Kind: live.EvResultCollect, Task: 1, Origin: "w1"}),
			},
		},
		"w1": {
			Node: "w1", EpochUnixNano: 1_700_000_000_000_000_000,
			Events: []live.Event{
				w1(1, 1000, live.Event{Kind: live.EvHello, Peer: "parent", WireSeq: 1}),
				w1(2, 2000, live.Event{Kind: live.EvHelloAck, Peer: "root", WireSeq: 2, CausePeer: "root", CauseSeq: 1}),
				w1(3, 2100, live.Event{Kind: live.EvRequestSent, Peer: "root", Value: 3, WireSeq: 2}),
				w1(4, 3500, live.Event{Kind: live.EvChunkRecv, Task: 1, Peer: "root", WireSeq: 3, CausePeer: "root", CauseSeq: 3}),
				w1(5, 3700, live.Event{Kind: live.EvTaskReceived, Task: 1, Peer: "root", Off: 4096, CausePeer: "root", CauseSeq: 3}),
				w1(6, 3800, live.Event{Kind: live.EvComputeStart, Task: 1}),
				w1(7, 4300, live.Event{Kind: live.EvComputeDone, Task: 1, Origin: "w1", Value: 500}),
				w1(8, 4400, live.Event{Kind: live.EvResultSend, Task: 1, Origin: "w1", Peer: "root", WireSeq: 5}),
				w1(9, 5400, live.Event{Kind: live.EvResultAck, Task: 1, Origin: "w1", Peer: "root", CausePeer: "root", CauseSeq: 5}),
			},
		},
	}
}

// TestMergeAlignsSkewedClocks pins the whole merge pipeline on the
// synthetic journey: the per-link symmetric-delay estimate recovers the
// worker's millisecond skew exactly, the merged timeline comes out in
// true-time order with per-node sequence order intact, no event precedes
// its cause, and the merge is deterministic.
func TestMergeAlignsSkewedClocks(t *testing.T) {
	dumps := synthDumps()
	merged := mergeDumps(dumps)

	total := len(dumps["root"].Events) + len(dumps["w1"].Events)
	if len(merged) != total {
		t.Fatalf("merged %d events, want %d", len(merged), total)
	}
	// Transit is symmetric (500ns each way), so the estimated offset is
	// exact and aligned timestamps equal true time; assert the full order.
	wantOrder := []struct {
		node string
		seq  uint64
		at   int64
	}{
		{"w1", 1, 1000}, {"root", 1, 1500}, {"w1", 2, 2000}, {"w1", 3, 2100},
		{"root", 2, 2600}, {"root", 3, 3000}, {"w1", 4, 3500}, {"w1", 5, 3700},
		{"w1", 6, 3800}, {"root", 4, 4200}, {"w1", 7, 4300}, {"w1", 8, 4400},
		{"root", 5, 4900}, {"root", 6, 5000}, {"w1", 9, 5400},
	}
	for i, w := range wantOrder {
		m := merged[i]
		if m.Node != w.node || m.Ev.Seq != w.seq || m.At != w.at {
			t.Fatalf("merged[%d] = %s#%d at %d, want %s#%d at %d",
				i, m.Node, m.Ev.Seq, m.At, w.node, w.seq, w.at)
		}
	}
	assertCausalOrder(t, merged)

	again := mergeDumps(synthDumps())
	for i := range merged {
		if merged[i] != again[i] {
			t.Fatalf("merge is not deterministic at index %d: %+v vs %+v", i, merged[i], again[i])
		}
	}
}

// assertCausalOrder fails if any merged event with a resolvable cause
// appears before that cause.
func assertCausalOrder(t *testing.T, merged []MergedEvent) {
	t.Helper()
	emitted := map[string]uint64{}
	present := map[string]bool{}
	for _, m := range merged {
		present[m.Node] = true
	}
	for i, m := range merged {
		e := m.Ev
		if e.CauseSeq != 0 && e.CausePeer != "" && present[e.CausePeer] && e.CauseSeq > emitted[e.CausePeer] {
			// Only a violation if the cause exists in the loaded window.
			for _, later := range merged[i:] {
				if later.Node == e.CausePeer && later.Ev.Seq == e.CauseSeq {
					t.Fatalf("merged[%d] %s/%v precedes its cause %s#%d", i, m.Node, e.Kind, e.CausePeer, e.CauseSeq)
				}
			}
		}
		emitted[m.Node] = e.Seq
	}
}

// TestMergeCausalOverridesRawTime forces the case alignment cannot fix:
// the only cross-node reference is an EvTaskReceived (excluded from
// alignment samples, because its cause is a whole transfer away), the
// epochs agree, and the receiver's clock runs behind — raw timestamps
// would put the delivery before the dispatch. The causal pass must hold
// the effect back until its cause is out.
func TestMergeCausalOverridesRawTime(t *testing.T) {
	dumps := map[string]live.TraceDump{
		"root": {Node: "root", Root: true, Events: []live.Event{
			{Seq: 1, At: 3000, Kind: live.EvChunkSend, Task: 1, Peer: "w1"},
		}},
		"w1": {Node: "w1", Events: []live.Event{
			{Seq: 1, At: 2500, Kind: live.EvTaskReceived, Task: 1, Peer: "root", CausePeer: "root", CauseSeq: 1},
		}},
	}
	merged := mergeDumps(dumps)
	if len(merged) != 2 {
		t.Fatalf("merged %d events, want 2", len(merged))
	}
	if merged[0].Node != "root" || merged[0].Ev.Kind != live.EvChunkSend {
		t.Fatalf("merged[0] = %s/%v, want the causing dispatch first", merged[0].Node, merged[0].Ev.Kind)
	}
	if merged[1].Node != "w1" || merged[1].Ev.Kind != live.EvTaskReceived {
		t.Fatalf("merged[1] = %s/%v, want the delivery second", merged[1].Node, merged[1].Ev.Kind)
	}
}

// TestVerifySyntheticJourney replays the synthetic journey through the
// conformance checker: request before dispatch, dispatch from a held
// task, delivery before compute — the stream must pass, and mutilating
// it (dispatch with the request stripped) must fail.
func TestVerifySyntheticJourney(t *testing.T) {
	dumps := synthDumps()
	if err := verifyMerged(mergeDumps(dumps), dumps); err != nil {
		t.Fatalf("synthetic journey fails conformance: %v", err)
	}

	// Strip the request-served event: the dispatch now serves a child
	// that never asked, which the replay must reject.
	broken := synthDumps()
	rd := broken["root"]
	rd.Events = append(rd.Events[:1:1], rd.Events[2:]...)
	broken["root"] = rd
	if err := verifyMerged(mergeDumps(broken), broken); err == nil {
		t.Fatal("dispatch without a registered request passed conformance")
	}
}

// TestChromeGolden pins the Chrome trace-event export byte for byte
// against testdata/chrome_golden.json (regenerate with -update). The
// export must also be valid JSON with the expected compute slice.
func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := writeChrome(&buf, mergeDumps(synthDumps())); err != nil {
		t.Fatalf("writeChrome: %v", err)
	}
	got := buf.Bytes()
	if !json.Valid(got) {
		t.Fatalf("export is not valid JSON:\n%s", got)
	}
	// The compute pair renders as one real-duration slice: 3800..4300
	// true-time, 1000 is the timeline base, so ts 2.800 dur 0.500.
	if !bytes.Contains(got, []byte(`{"name":"compute task 1","cat":"compute","ph":"X","ts":2.800,"dur":0.500,"pid":2,"tid":1}`)) {
		t.Errorf("export lacks the expected compute slice:\n%s", got)
	}

	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file: %v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("export drifted from golden (run with -update if intended)\n got:\n%s\nwant:\n%s", got, want)
	}
}

// writeDump marshals a dump the way bwnode -trace-out does.
func writeDump(t *testing.T, dir string, d live.TraceDump) string {
	t.Helper()
	p := filepath.Join(dir, d.Node+".json")
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSeverDuringReplayTimeline is the acceptance scenario: the ROADMAP
// repro configuration (uplink severed while the worker is sending — and,
// after the first reconnect, replaying — results) run in-process, both
// flight recorders dumped, and the dumps pushed through the full bwtrace
// pipeline. The merged timeline must show the lost-and-replayed result's
// journey as linked events across both nodes — send, sever, replay, the
// root's receive naming the replay, ack, collect — and pass the
// protocol-conformance replay.
func TestSeverDuringReplayTimeline(t *testing.T) {
	const tasks = 40
	plan := live.NewFaultPlan(
		live.FaultRule{Link: "parent", Dir: live.FaultSend, Kind: live.FrameResult, After: 3, Op: live.FaultSever},
		live.FaultRule{Link: "parent", Dir: live.FaultSend, Kind: live.FrameResult, After: 6, Op: live.FaultSever},
	)
	root, err := live.StartConfig(live.Config{
		Name: "root", Listen: "127.0.0.1:0", Buffers: 3,
		Compute:           func(tk live.Task) ([]byte, error) { time.Sleep(15 * time.Millisecond); return tk.Payload, nil },
		HeartbeatInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("start root: %v", err)
	}
	defer root.Close()
	w, err := live.StartConfig(live.Config{
		Name: "w", Parent: root.Addr(), Buffers: 3,
		Compute:       func(tk live.Task) ([]byte, error) { time.Sleep(5 * time.Millisecond); return tk.Payload, nil },
		Faults:        plan,
		ReconnectBase: 20 * time.Millisecond, ReconnectCap: 100 * time.Millisecond, ReconnectAttempts: 20,
	})
	if err != nil {
		t.Fatalf("start worker: %v", err)
	}
	defer w.Close()

	in := make([]live.Task, tasks)
	for i := range in {
		in[i] = live.Task{ID: uint64(i + 1), Payload: bytes.Repeat([]byte{byte(i)}, 256)}
	}
	results, err := root.RunTimeout(in, 60*time.Second)
	if err != nil {
		t.Fatalf("run across the sever windows: %v", err)
	}
	if len(results) != tasks {
		t.Fatalf("collected %d results, want %d", len(results), tasks)
	}
	if plan.Pending() != 0 {
		t.Fatalf("the scripted severs never fired: %d pending", plan.Pending())
	}

	dumps := map[string]live.TraceDump{"root": root.TraceDump(), "w": w.TraceDump()}
	dir := t.TempDir()
	rootPath := writeDump(t, dir, dumps["root"])
	wPath := writeDump(t, dir, dumps["w"])

	// The CLI end to end: load, merge, verify, export.
	chromeOut := filepath.Join(dir, "chrome.json")
	if err := run([]string{"-q", "-verify", "-chrome", chromeOut, rootPath, wPath}); err != nil {
		t.Fatalf("bwtrace -verify -chrome on the repro dumps: %v", err)
	}
	if b, err := os.ReadFile(chromeOut); err != nil || !json.Valid(b) {
		t.Fatalf("chrome export unreadable or invalid JSON: %v", err)
	}

	merged := mergeDumps(dumps)
	assertCausalOrder(t, merged)

	// Index the merged timeline by position for the journey assertions.
	pos := func(match func(MergedEvent) bool) int {
		for i, m := range merged {
			if match(m) {
				return i
			}
		}
		return -1
	}
	// Find a replayed result the root received: a worker result-replay
	// event that some root result-recv names as its cause.
	replayIdx, recvIdx := -1, -1
	var task uint64
	for i, m := range merged {
		if m.Node != "w" || m.Ev.Kind != live.EvResultReplay {
			continue
		}
		j := pos(func(x MergedEvent) bool {
			return x.Node == "root" && x.Ev.Kind == live.EvResultRecv &&
				x.Ev.CausePeer == "w" && x.Ev.CauseSeq == m.Ev.Seq
		})
		if j >= 0 {
			replayIdx, recvIdx, task = i, j, m.Ev.Task
			break
		}
	}
	if replayIdx < 0 {
		t.Fatal("no replayed result was received by the root: the repro did not exercise the replay path")
	}

	// The journey's legs, in merged order: the original send, the sever
	// that swallowed (or followed) it, the replay, the root's receive
	// naming the replay, the worker's ack, and the root's collection.
	sendIdx := pos(func(x MergedEvent) bool {
		return x.Node == "w" && x.Ev.Kind == live.EvResultSend && x.Ev.Task == task
	})
	severIdx := pos(func(x MergedEvent) bool { return x.Node == "w" && x.Ev.Kind == live.EvSever })
	ackIdx := pos(func(x MergedEvent) bool {
		return x.Node == "w" && x.Ev.Kind == live.EvResultAck && x.Ev.Task == task
	})
	// The journey's terminal leg follows the replay's arrival: a dedupe
	// when the original send actually made it (only its ack was lost), a
	// collection when the sever swallowed the result itself.
	doneIdx := -1
	for i := recvIdx + 1; i < len(merged); i++ {
		x := merged[i]
		if x.Node == "root" && x.Ev.Task == task &&
			(x.Ev.Kind == live.EvResultCollect || x.Ev.Kind == live.EvResultDedupe) {
			doneIdx = i
			break
		}
	}
	for leg, idx := range map[string]int{
		"result-send": sendIdx, "sever": severIdx, "result-ack": ackIdx, "collect/dedupe": doneIdx,
	} {
		if idx < 0 {
			t.Fatalf("task %d journey is missing its %s event", task, leg)
		}
	}
	if !(sendIdx < replayIdx && severIdx < replayIdx && replayIdx < recvIdx && recvIdx < doneIdx) {
		t.Errorf("task %d journey out of order: send=%d sever=%d replay=%d recv=%d done=%d",
			task, sendIdx, severIdx, replayIdx, recvIdx, doneIdx)
	}
	if recvIdx > ackIdx {
		t.Errorf("task %d acked before the root received it: recv=%d ack=%d", task, recvIdx, ackIdx)
	}

	// And the merged timeline passes the conformance replay directly
	// (run -verify already checked this through the CLI).
	if err := verifyMerged(merged, dumps); err != nil {
		t.Errorf("merged repro timeline fails conformance: %v", err)
	}

	// A root-only merge (worker dump withheld) must also verify: with the
	// child's dump absent, deliveries come from the parent-side final
	// chunk-ack fallback instead of the child's task-received events.
	rootOnly := map[string]live.TraceDump{"root": dumps["root"]}
	if err := verifyMerged(mergeDumps(rootOnly), rootOnly); err != nil {
		t.Errorf("root-only timeline fails conformance: %v", err)
	}
}

// TestRunRejectsBadInput covers the CLI's error paths: no dumps, a
// non-dump file, and two dumps for the same node.
func TestRunRejectsBadInput(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("run with no dumps succeeded")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"events":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-q", bad}); err == nil {
		t.Error("run accepted a dump with no node name")
	}
	d := writeDump(t, dir, live.TraceDump{Node: "n1", Events: []live.Event{}})
	if err := run([]string{"-q", d, d}); err == nil {
		t.Error("run accepted two dumps for the same node")
	}
}
