package bwcs

// Multi-application evaluation: several independent-task applications
// (tenants) share one platform tree under weighted bandwidth-centric
// scheduling. The paper schedules one application per tree; Workload and
// EvaluateWorkloads generalize it — each task is tagged with its
// application, the root keeps one pool per application, and every send or
// compute decision picks the application by weighted round-robin before
// the paper's bandwidth-centric priority decides where the task goes.
// Tagging never perturbs the aggregate schedule, so everything the paper
// proves about a single application's steady state carries over to the
// merged stream verbatim.

import (
	"context"
	"fmt"

	"bwcs/internal/engine"
	"bwcs/internal/optimal"
	"bwcs/internal/rational"
	"bwcs/internal/stats"
	"bwcs/internal/steady"
	"bwcs/internal/window"
)

// Workload describes one application sharing the platform: its task
// count, its sharing weight (zero means 1), and the simulated time its
// pool opens at the root (zero releases it at the start; positive values
// let tenants join mid-run).
type Workload = engine.Workload

// AppSummary is the per-application slice of a MultiSummary, carrying the
// same steady-state analysis Evaluate performs for a single application,
// measured against the application's weighted fair share of the platform.
type AppSummary struct {
	// App, Weight, Release and Tasks echo the workload (Weight
	// normalized: zero reports as 1).
	App     string
	Weight  int64
	Release Time
	Tasks   int64
	// Completions are this application's completion times, ascending;
	// Requeued counts its tasks re-dispatched after departures.
	Completions []Time
	Requeued    int64
	// FairWeight is the application's weighted fair share of the optimal
	// steady-state rate, expressed as a task weight (time per task):
	// TreeWeight × ΣWeight ⁄ Weight. An application computing one task
	// every FairWeight timesteps receives exactly its share.
	FairWeight Rat
	// Series, Reached and Onset are the paper's windowed onset analysis of
	// the application's completion stream against FairWeight; Series is
	// nil when the application completed fewer than two tasks.
	Series  *RateSeries
	Reached bool
	Onset   int
	// Steady and Class are the periodicity-based detection and its exact
	// classification against FairWeight.
	Steady SteadyState
	Class  SteadyClass
	// Share is the fraction of aggregate completions belonging to this
	// application over the mid-run measurement window (the central 60% of
	// the merged stream, clear of startup and wind-down).
	Share float64
}

// MultiSummary bundles everything EvaluateWorkloads learns about one
// multi-application run.
type MultiSummary struct {
	// Result is the raw engine outcome (Result.Apps holds the
	// per-application completion streams).
	Result  *SimResult
	Optimal *Allocation
	// Aggregate analyzes the merged completion stream exactly as Evaluate
	// analyzes a single application: tagging does not perturb the
	// aggregate schedule, so the merged stream reaches the single-app
	// optimal rate whenever the untagged run would.
	Aggregate *Summary
	// Apps are the per-application analyses, in workload order.
	Apps []AppSummary
	// Fairness is Jain's fairness index over the applications'
	// weight-normalized mid-run shares (Share ⁄ Weight): 1 when service is
	// exactly proportional to weight, approaching 1⁄N as one application
	// monopolizes the platform.
	Fairness float64
	// Timeline, Converged and ConvergedAt mirror the Aggregate analysis
	// (see Summary): the run's sampled telemetry when WithTimeline was
	// set, and the convergence verdict over its aggregate rate series.
	Timeline    *SimTimeline
	Converged   bool
	ConvergedAt Time
}

// EvaluateWorkloads runs N applications concurrently on tree t under
// protocol p with weighted bandwidth-centric sharing, and analyzes both
// the aggregate run (against the tree's optimal steady-state rate) and
// each application (against its weighted fair share). At least one
// workload and two tasks in total are required.
//
// A single-workload call is event-for-event identical to Evaluate with
// the same task count — tags ride along without touching the schedule —
// so Evaluate is exactly the one-tenant special case.
func EvaluateWorkloads(ctx context.Context, t *Tree, p Protocol, ws []Workload, opts ...Option) (*MultiSummary, error) {
	if len(ws) == 0 {
		return nil, fmt.Errorf("bwcs: no workloads")
	}
	var total int64
	for _, w := range ws {
		total += w.Tasks
	}
	if total < 2 {
		return nil, fmt.Errorf("bwcs: need at least 2 tasks across workloads, got %d", total)
	}
	s := newEvalSettings(opts)
	s.cfg.Tree, s.cfg.Protocol, s.cfg.Workloads, s.cfg.Ctx = t, p, ws, ctx
	res, err := engine.Run(s.cfg)
	if err != nil {
		return nil, err
	}
	if s.metrics != nil {
		*s.metrics = res.Metrics
	}
	opt := optimal.Compute(t)
	agg, err := summarize(res, opt, s.threshold)
	if err != nil {
		return nil, err
	}
	m := &MultiSummary{Result: res, Optimal: opt, Aggregate: agg,
		Timeline: agg.Timeline, Converged: agg.Converged, ConvergedAt: agg.ConvergedAt}

	var sumW int64
	for _, w := range ws {
		sumW += effectiveWeight(w)
	}
	shares := midRunShares(res)
	m.Apps = make([]AppSummary, len(res.Apps))
	for i, ar := range res.Apps {
		as := AppSummary{
			App: ar.App, Weight: ar.Weight, Release: ar.Release, Tasks: ar.Tasks,
			Completions: ar.Completions, Requeued: ar.Requeued,
			Share: shares[i],
		}
		// Fair-share rate is opt.Rate × w ⁄ ΣW; as a task weight that is
		// TreeWeight × ΣW ⁄ w.
		as.FairWeight = opt.TreeWeight.Mul(rational.FromInt(sumW)).Div(rational.FromInt(ar.Weight))
		if len(ar.Completions) >= 2 {
			series, err := window.New(ar.Completions, as.FairWeight)
			if err != nil {
				return nil, err
			}
			as.Series = series
			as.Onset, as.Reached = series.OnsetInclusive(s.threshold)
		}
		as.Steady = steady.Detect(ar.Completions, steady.Options{})
		as.Class = as.Steady.Classify(as.FairWeight)
		m.Apps[i] = as
	}
	m.Fairness = jain(m.Apps)
	return m, nil
}

func effectiveWeight(w Workload) int64 {
	if w.Weight <= 0 {
		return 1
	}
	return w.Weight
}

// midRunShares measures each application's fraction of the aggregate
// completions over the central 60% of the merged stream (between the 20th
// and 80th percentile completion times), excluding startup and wind-down.
// If the window is degenerate (everything completes at once), the full
// stream is used.
func midRunShares(res *SimResult) []float64 {
	n := len(res.Completions)
	shares := make([]float64, len(res.Apps))
	lo, hi := res.Completions[n/5], res.Completions[n*4/5]
	count := func(lo, hi Time) (per []int64, total int64) {
		per = make([]int64, len(res.Apps))
		for i, ar := range res.Apps {
			for _, c := range ar.Completions {
				if c > lo && c <= hi {
					per[i]++
					total++
				}
			}
		}
		return per, total
	}
	per, total := count(lo, hi)
	if total == 0 {
		per, total = count(-1, res.Makespan)
	}
	if total == 0 {
		return shares
	}
	for i := range per {
		shares[i] = float64(per[i]) / float64(total)
	}
	return shares
}

// jain computes Jain's fairness index over the applications'
// weight-normalized shares x_i = Share_i ⁄ Weight_i:
// (Σx)² ⁄ (N·Σx²) ∈ (0, 1], equal to 1 iff every x_i is equal.
func jain(apps []AppSummary) float64 {
	xs := make([]float64, len(apps))
	for i, a := range apps {
		xs[i] = a.Share / float64(a.Weight)
	}
	return stats.Jain(xs)
}
