package bwcs

// One benchmark per table and figure of the paper's evaluation, each
// regenerating a scaled-down version of the corresponding experiment (the
// bwexp command runs them at any scale, including the paper's full
// 25,000×10,000 sweep). The per-op metrics make harness-level performance
// regressions visible; the experiment *results* live in EXPERIMENTS.md.

import (
	"io"
	"testing"

	"bwcs/internal/engine"
	"bwcs/internal/experiments"
	"bwcs/internal/protocol"
	"bwcs/internal/randtree"
)

// benchOptions keeps every figure/table benchmark at a size that runs in
// milliseconds per iteration while preserving the experiment's structure.
func benchOptions() experiments.Options {
	return experiments.Options{
		Trees:     16,
		Tasks:     900,
		Threshold: 100,
		Seed:      2003,
		Params:    randtree.Params{MinNodes: 10, MaxNodes: 200, MinComm: 1, MaxComm: 100, Comp: 4000},
	}
}

func BenchmarkFig3(b *testing.B) {
	b.ReportAllocs()
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(o)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	b.ReportAllocs()
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(o)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	o := benchOptions()
	f4, err := experiments.Fig4(o)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(f4)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	b.ReportAllocs()
	o := benchOptions()
	o.Trees = 6 // four classes × two protocols inside
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(o)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	o := benchOptions()
	o.Trees = 6
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(o)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	b.ReportAllocs()
	o := benchOptions()
	f4, err := experiments.Fig4(o)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(f4)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(1000, 200)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPolicy(b *testing.B) {
	b.ReportAllocs()
	o := benchOptions()
	o.Trees = 6
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationPolicy(o)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationInterrupt(b *testing.B) {
	b.ReportAllocs()
	o := benchOptions()
	o.Trees = 6
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationInterrupt(o)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverlay(b *testing.B) {
	b.ReportAllocs()
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Overlay(o, 12)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateDefaultTree measures the raw engine: one paper-scale
// random tree, 10,000 tasks, the headline IC FB=3 protocol.
func BenchmarkSimulateDefaultTree(b *testing.B) {
	tr := randtree.TreeAt(randtree.Defaults(), 1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(engine.Config{Tree: tr, Protocol: protocol.Interruptible(3), Tasks: 10_000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateNonIC measures the growth protocol on the same tree.
func BenchmarkSimulateNonIC(b *testing.B) {
	tr := randtree.TreeAt(randtree.Defaults(), 1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(engine.Config{Tree: tr, Protocol: protocol.NonInterruptible(1), Tasks: 10_000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluate measures the full public-API path: simulate, compute
// the optimal rate, and run the window analysis.
func BenchmarkEvaluate(b *testing.B) {
	tr := GenerateTree(DefaultTreeParams(), 1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(tr, IC(3), 4000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDecay(b *testing.B) {
	b.ReportAllocs()
	o := benchOptions()
	o.Trees = 6
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationDecay(o)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChurn(b *testing.B) {
	b.ReportAllocs()
	o := benchOptions()
	o.Trees = 6
	for i := 0; i < b.N; i++ {
		r, err := experiments.Churn(o, 4)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetector(b *testing.B) {
	b.ReportAllocs()
	o := benchOptions()
	o.Trees = 6
	for i := 0; i < b.N; i++ {
		r, err := experiments.Detector(o)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
