package bwcs_test

// API-compatibility guard: the exported surface of package bwcs is
// pinned in testdata/api_golden.txt. Adding exports is fine (the guard
// reports them and asks for a golden refresh); removing or changing an
// exported name, signature, field, or method fails the build — the
// public API only grows.
//
// Regenerate the golden after a deliberate API change with:
//
//	BWCS_UPDATE_API=1 go test -run TestExportedAPICompat .

import (
	"fmt"
	"go/types"
	"os"
	"sort"
	"strings"
	"testing"

	"bwcs/internal/lint/loader"
)

const apiGoldenPath = "testdata/api_golden.txt"

// apiSurface renders the package's exported surface as sorted, stable
// one-line facts: one line per const/var/func, per type, per exported
// field, and per exported method. Aliases to module-internal types (the
// re-export idiom bwcs uses for engine types) are expanded the same way,
// since their fields and methods are part of the public API.
func apiSurface(pkg *types.Package) []string {
	qual := types.RelativeTo(pkg)
	var lines []string
	add := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	var expand func(name string, named *types.Named)
	expand = func(name string, named *types.Named) {
		switch u := named.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				f := u.Field(i)
				if !f.Exported() {
					continue
				}
				add("field %s.%s %s", name, f.Name(), types.TypeString(f.Type(), qual))
			}
		case *types.Interface:
			for i := 0; i < u.NumMethods(); i++ {
				m := u.Method(i)
				if !m.Exported() {
					continue
				}
				add("method %s.%s%s", name, m.Name(), strings.TrimPrefix(types.TypeString(m.Type(), qual), "func"))
			}
			return // interface methods are the whole surface
		}
		ms := types.NewMethodSet(types.NewPointer(named))
		for i := 0; i < ms.Len(); i++ {
			m := ms.At(i).Obj()
			if !m.Exported() {
				continue
			}
			add("method %s.%s%s", name, m.Name(), strings.TrimPrefix(types.TypeString(m.Type(), qual), "func"))
		}
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		tn, ok := obj.(*types.TypeName)
		if !ok {
			lines = append(lines, types.ObjectString(obj, qual))
			continue
		}
		if tn.IsAlias() {
			add("type %s = %s", name, types.TypeString(tn.Type(), qual))
			if named, ok := tn.Type().(*types.Named); ok {
				expand(name, named)
			}
			continue
		}
		named := tn.Type().(*types.Named)
		switch named.Underlying().(type) {
		case *types.Struct:
			add("type %s struct", name)
		case *types.Interface:
			add("type %s interface", name)
		default:
			add("type %s %s", name, types.TypeString(named.Underlying(), qual))
		}
		expand(name, named)
	}
	sort.Strings(lines)
	return lines
}

func TestExportedAPICompat(t *testing.T) {
	l, err := loader.New(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.Load(l.ModulePath())
	if err != nil {
		t.Fatalf("load %s: %v", l.ModulePath(), err)
	}
	lines := apiSurface(pkg.Types)

	if os.Getenv("BWCS_UPDATE_API") != "" {
		if err := os.WriteFile(apiGoldenPath, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
		t.Logf("wrote %d api facts to %s", len(lines), apiGoldenPath)
		return
	}

	raw, err := os.ReadFile(apiGoldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with BWCS_UPDATE_API=1): %v", err)
	}
	current := make(map[string]bool, len(lines))
	for _, ln := range lines {
		current[ln] = true
	}
	var missing []string
	golden := make(map[string]bool)
	for _, ln := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if ln == "" {
			continue
		}
		golden[ln] = true
		if !current[ln] {
			missing = append(missing, ln)
		}
	}
	for _, ln := range missing {
		t.Errorf("exported API removed or changed: %s", ln)
	}
	if len(missing) > 0 {
		t.Fatalf("%d exported declarations from %s are gone; breaking the public API fails the build (after a deliberate change, regenerate with BWCS_UPDATE_API=1)", len(missing), apiGoldenPath)
	}
	var added []string
	for _, ln := range lines {
		if !golden[ln] {
			added = append(added, ln)
		}
	}
	if len(added) > 0 {
		t.Logf("new exported API (allowed; pin it with BWCS_UPDATE_API=1):\n  %s", strings.Join(added, "\n  "))
	}
}
