package bwcs_test

import (
	"context"
	"fmt"

	"bwcs"
)

// The bandwidth-centric theorem in action: the fast-linked slow CPU is
// preferred over the fast CPU behind a slow link, and leftover bandwidth
// feeds the latter partially.
func ExampleOptimal() {
	t := bwcs.NewTree(4)
	t.AddChild(t.Root(), 2, 1) // w=2 behind a fast link
	t.AddChild(t.Root(), 2, 2) // same CPU behind a slower link

	opt := bwcs.Optimal(t)
	fmt.Println("optimal rate:", opt.Rate)
	for id := bwcs.NodeID(0); int(id) < t.Len(); id++ {
		fmt.Printf("node %d: %s at %s tasks/timestep\n", id, opt.Class(t, id), opt.NodeRate[id])
	}
	// Output:
	// optimal rate: 1
	// node 0: saturated at 1/4 tasks/timestep
	// node 1: saturated at 1/2 tasks/timestep
	// node 2: partial at 1/4 tasks/timestep
}

// Simulating the paper's headline protocol (interruptible communication,
// three fixed buffers) and verifying it attains the optimal steady state
// exactly, via periodicity detection.
func ExampleEvaluate() {
	t := bwcs.NewTree(4)
	t.AddChild(t.Root(), 2, 1)
	t.AddChild(t.Root(), 2, 2)

	sum, err := bwcs.Evaluate(t, bwcs.IC(3), 2000)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("reached optimal:", sum.Reached)
	fmt.Println("steady class:", sum.Class)
	fmt.Println("exact steady rate:", sum.Steady.Rate)
	// Output:
	// reached optimal: true
	// steady class: optimal
	// exact steady rate: 1
}

// Two tenants share one platform under weighted bandwidth-centric
// scheduling: the heavier-weighted application receives proportionally
// more of the platform's optimal rate, while the merged stream behaves
// exactly like a single application of the combined size.
func ExampleEvaluateWorkloads() {
	t := bwcs.NewTree(4)
	t.AddChild(t.Root(), 2, 1)
	t.AddChild(t.Root(), 2, 2)

	m, err := bwcs.EvaluateWorkloads(context.Background(), t, bwcs.IC(3), []bwcs.Workload{
		{App: "batch", Tasks: 1000, Weight: 1},
		{App: "interactive", Tasks: 3000, Weight: 3},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("aggregate reached optimal:", m.Aggregate.Reached)
	fmt.Println("aggregate steady rate:", m.Aggregate.Steady.Rate)
	for _, a := range m.Apps {
		fmt.Printf("%s: weight %d, share %.2f\n", a.App, a.Weight, a.Share)
	}
	fmt.Printf("fairness: %.3f\n", m.Fairness)
	// Output:
	// aggregate reached optimal: true
	// aggregate steady rate: 1
	// batch: weight 1, share 0.25
	// interactive: weight 3, share 0.75
	// fairness: 1.000
}

// Platforms change while applications run; the protocol adapts because
// every decision is local. Here P1's link triples in cost mid-run.
func ExampleSimulate_mutation() {
	t := bwcs.ExampleTree() // the paper's Figure 1 platform
	res, err := bwcs.Simulate(bwcs.SimConfig{
		Tree:      t,
		Protocol:  bwcs.NonICFixed(2),
		Tasks:     1000,
		Mutations: []bwcs.Mutation{{AfterTasks: 200, Node: 1, C: 3}},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("tasks completed:", len(res.Completions))
	fmt.Println("platform mutated:", res.Tree.C(1) == 3)
	// Output:
	// tasks completed: 1000
	// platform mutated: true
}

// Generating a platform from the paper's random distribution; the same
// (params, seed, index) triple always yields the same tree.
func ExampleGenerateTree() {
	t := bwcs.GenerateTree(bwcs.DefaultTreeParams(), 2003, 0)
	fmt.Println("valid:", t.Validate() == nil)
	fmt.Println("deterministic:", t.Len() == bwcs.GenerateTree(bwcs.DefaultTreeParams(), 2003, 0).Len())
	// Output:
	// valid: true
	// deterministic: true
}
