package bwcs_test

// Cross-validation of the Workload API against the legacy positional
// API: a single-workload EvaluateWorkloads run must be event-for-event
// identical to Evaluate (the determinism pin for the multi-application
// machinery), and the functional options must reach the engine.

import (
	"context"
	"strings"
	"testing"

	"bwcs"
)

func pinTrees() []*bwcs.Tree {
	trees := []*bwcs.Tree{bwcs.ExampleTree()}
	for i := 0; i < 4; i++ {
		trees = append(trees, bwcs.GenerateTree(bwcs.DefaultTreeParams(), 2003, i))
	}
	return trees
}

// TestSingleWorkloadMatchesEvaluate pins that the tagged multi-app path
// reproduces the legacy path exactly: same completion times, same
// analysis verdicts, and the one app owns the whole stream.
func TestSingleWorkloadMatchesEvaluate(t *testing.T) {
	const tasks = 3000
	ctx := context.Background()
	for ti, tr := range pinTrees() {
		for _, p := range []bwcs.Protocol{bwcs.IC(3), bwcs.NonIC(1)} {
			legacy, err := bwcs.Evaluate(tr, p, tasks)
			if err != nil {
				t.Fatalf("tree %d: Evaluate: %v", ti, err)
			}
			multi, err := bwcs.EvaluateWorkloads(ctx, tr, p, []bwcs.Workload{{App: "only", Tasks: tasks}})
			if err != nil {
				t.Fatalf("tree %d: EvaluateWorkloads: %v", ti, err)
			}
			lc, mc := legacy.Result.Completions, multi.Result.Completions
			if len(lc) != len(mc) {
				t.Fatalf("tree %d: %d vs %d completions", ti, len(lc), len(mc))
			}
			for i := range lc {
				if lc[i] != mc[i] {
					t.Fatalf("tree %d: completion %d differs: %d vs %d", ti, i, lc[i], mc[i])
				}
			}
			if legacy.Reached != multi.Aggregate.Reached || legacy.Class != multi.Aggregate.Class {
				t.Fatalf("tree %d: analysis differs: (%v,%v) vs (%v,%v)",
					ti, legacy.Reached, legacy.Class, multi.Aggregate.Reached, multi.Aggregate.Class)
			}
			if !legacy.Steady.Rate.Equal(multi.Aggregate.Steady.Rate) {
				t.Fatalf("tree %d: steady rate differs", ti)
			}
			app := multi.Apps[0]
			if int64(len(app.Completions)) != tasks || app.Share != 1 {
				t.Fatalf("tree %d: app stream %d tasks, share %v", ti, len(app.Completions), app.Share)
			}
			if multi.Fairness != 1 {
				t.Fatalf("tree %d: single-app fairness = %v, want 1", ti, multi.Fairness)
			}
		}
	}
}

func TestEvaluateWorkloadsErrors(t *testing.T) {
	ctx := context.Background()
	tr := bwcs.NewTree(3)
	if _, err := bwcs.EvaluateWorkloads(ctx, tr, bwcs.IC(3), nil); err == nil || !strings.Contains(err.Error(), "no workloads") {
		t.Fatalf("nil workloads: err = %v", err)
	}
	one := []bwcs.Workload{{App: "a", Tasks: 1}}
	if _, err := bwcs.EvaluateWorkloads(ctx, tr, bwcs.IC(3), one); err == nil || !strings.Contains(err.Error(), "at least 2 tasks") {
		t.Fatalf("tiny workload: err = %v", err)
	}
	dup := []bwcs.Workload{{App: "a", Tasks: 5}, {App: "a", Tasks: 5}}
	if _, err := bwcs.EvaluateWorkloads(ctx, tr, bwcs.IC(3), dup); err == nil {
		t.Fatalf("duplicate app accepted")
	}
}

// TestOptionsReachEngine exercises the functional options end to end:
// WithMetrics captures the run's counters, WithDepartures mutates the
// platform, WithWindow changes the onset verdict, and the same options
// work on both entry points.
func TestOptionsReachEngine(t *testing.T) {
	ctx := context.Background()
	tr := bwcs.ExampleTree()

	var m bwcs.SimMetrics
	sum, err := bwcs.Evaluate(tr, bwcs.IC(3), 2000, bwcs.WithMetrics(&m))
	if err != nil {
		t.Fatalf("Evaluate with options: %v", err)
	}
	if m.ComputesDone != 2000 {
		t.Fatalf("WithMetrics: ComputesDone = %d, want 2000", m.ComputesDone)
	}
	if sum.Result.Metrics.ComputesDone != m.ComputesDone {
		t.Fatalf("metrics snapshot diverges from result")
	}

	tr2 := bwcs.NewTree(8)
	c := tr2.AddChild(tr2.Root(), 4, 1)
	tr2.AddChild(c, 4, 1)
	ws := []bwcs.Workload{{App: "a", Tasks: 300}, {App: "b", Tasks: 300, Weight: 2}}
	var m2 bwcs.SimMetrics
	multi, err := bwcs.EvaluateWorkloads(ctx, tr2, bwcs.IC(3), ws,
		bwcs.WithMetrics(&m2),
		bwcs.WithDepartures(bwcs.DepartMutation{AfterTasks: 100, Node: c}),
		bwcs.WithWindow(10),
	)
	if err != nil {
		t.Fatalf("EvaluateWorkloads with options: %v", err)
	}
	if multi.Result.Requeued == 0 {
		t.Fatalf("WithDepartures: nothing requeued")
	}
	var requeued int64
	for _, a := range multi.Apps {
		requeued += a.Requeued
	}
	if requeued != multi.Result.Requeued {
		t.Fatalf("per-app requeued %d != aggregate %d", requeued, multi.Result.Requeued)
	}
	if m2.ComputesDone != 600 {
		t.Fatalf("WithMetrics on workloads: ComputesDone = %d, want 600", m2.ComputesDone)
	}
}
